// Unit tests for bp::util: Status/Result, serialization, RNG, strings,
// budgets.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/budget.hpp"
#include "util/hash.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"
#include "util/serde.hpp"
#include "util/status.hpp"
#include "util/strings.hpp"
#include "util/time.hpp"

namespace bp::util {
namespace {

// ------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("no such page");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.ToString(), "NotFound: no such page");
}

TEST(StatusTest, CodeNamesAreDistinct) {
  std::set<std::string_view> names;
  for (int c = 0; c <= static_cast<int>(StatusCode::kUnimplemented); ++c) {
    names.insert(StatusCodeName(static_cast<StatusCode>(c)));
  }
  EXPECT_EQ(names.size(),
            static_cast<size_t>(StatusCode::kUnimplemented) + 1);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::Corruption("bad"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> Half(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Result<int> Quarter(int v) {
  BP_ASSIGN_OR_RETURN(int half, Half(v));
  BP_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(5).ok());
}

// ------------------------------------------------------------ require

TEST(RequireTest, ThrowsLogicErrorWithContext) {
  try {
    BP_REQUIRE(1 == 2, "math is broken");
    FAIL() << "should have thrown";
  } catch (const std::logic_error& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math is broken"), std::string::npos);
  }
}

TEST(RequireTest, PassesSilently) {
  BP_REQUIRE(true);
  BP_CHECK(2 + 2 == 4);
}

// -------------------------------------------------------------- serde

TEST(SerdeTest, FixedWidthRoundTrip) {
  Writer w;
  w.PutU8(0xAB);
  w.PutU16(0xBEEF);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFULL);
  Reader r(w.data());
  EXPECT_EQ(r.ReadU8(), 0xAB);
  EXPECT_EQ(r.ReadU16(), 0xBEEF);
  EXPECT_EQ(r.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.ReadU64(), 0x0123456789ABCDEFULL);
  EXPECT_TRUE(r.Finish().ok());
}

TEST(SerdeTest, VarintRoundTripBoundaries) {
  const uint64_t values[] = {0,      1,        127,        128,
                             16383,  16384,    (1ULL << 32) - 1,
                             1ULL << 32,       UINT64_MAX};
  Writer w;
  for (uint64_t v : values) w.PutVarint64(v);
  Reader r(w.data());
  for (uint64_t v : values) EXPECT_EQ(r.ReadVarint64(), v);
  EXPECT_TRUE(r.Finish().ok());
}

TEST(SerdeTest, SignedVarintRoundTrip) {
  const int64_t values[] = {0, -1, 1, -64, 64, INT64_MIN, INT64_MAX};
  Writer w;
  for (int64_t v : values) w.PutSignedVarint64(v);
  Reader r(w.data());
  for (int64_t v : values) EXPECT_EQ(r.ReadSignedVarint64(), v);
  EXPECT_TRUE(r.Finish().ok());
}

TEST(SerdeTest, StringAndDoubleRoundTrip) {
  Writer w;
  w.PutString("hello");
  w.PutString("");
  w.PutString(std::string("\0with\0nuls", 10));
  w.PutDouble(3.14159);
  w.PutDouble(-0.0);
  Reader r(w.data());
  EXPECT_EQ(r.ReadString(), "hello");
  EXPECT_EQ(r.ReadString(), "");
  EXPECT_EQ(r.ReadString(), std::string_view("\0with\0nuls", 10));
  EXPECT_DOUBLE_EQ(r.ReadDouble(), 3.14159);
  EXPECT_EQ(r.ReadDouble(), 0.0);
  EXPECT_TRUE(r.Finish().ok());
}

TEST(SerdeTest, TruncatedReadSetsError) {
  Writer w;
  w.PutU32(7);
  Reader r(std::string_view(w.data()).substr(0, 2));
  r.ReadU32();
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.Finish().ok());
}

TEST(SerdeTest, TrailingBytesFailFinish) {
  Writer w;
  w.PutU8(1);
  w.PutU8(2);
  Reader r(w.data());
  r.ReadU8();
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.Finish().ok());
}

TEST(SerdeTest, MalformedVarintOverflowDetected) {
  // 11 bytes of continuation: not a valid 64-bit varint.
  std::string bad(11, '\xff');
  Reader r(bad);
  r.ReadVarint64();
  EXPECT_FALSE(r.ok());
}

TEST(SerdeTest, OrderedKeyPreservesOrder) {
  const uint64_t values[] = {0, 1, 255, 256, 65535, 1ULL << 40, UINT64_MAX};
  std::string prev;
  for (uint64_t v : values) {
    std::string key = OrderedKeyU64(v);
    EXPECT_EQ(key.size(), 8u);
    EXPECT_EQ(DecodeOrderedKeyU64(key), v);
    if (!prev.empty()) {
      EXPECT_LT(prev, key);
    }
    prev = key;
  }
}

TEST(SerdeTest, OrderedKeyPairSortsLexicographically) {
  EXPECT_LT(OrderedKeyU64Pair(1, 999), OrderedKeyU64Pair(2, 0));
  EXPECT_LT(OrderedKeyU64Pair(2, 1), OrderedKeyU64Pair(2, 2));
}

// ---------------------------------------------------------------- rng

TEST(RngTest, DeterministicForSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ForkIsIndependentAndStable) {
  Rng parent(99);
  Rng f1 = parent.Fork(1);
  Rng f2 = parent.Fork(1);
  EXPECT_EQ(f1.NextU64(), f2.NextU64());
  Rng f3 = parent.Fork(2);
  EXPECT_NE(parent.Fork(1).NextU64(), f3.NextU64());
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.UniformReal();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(42);
  int counts[10] = {};
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.Uniform(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 100);  // within 10% relative
  }
}

TEST(RngTest, PoissonMeanMatchesLambda) {
  Rng rng(5);
  for (double lambda : {0.5, 4.0, 100.0}) {
    double sum = 0;
    const int kDraws = 20000;
    for (int i = 0; i < kDraws; ++i) sum += rng.Poisson(lambda);
    EXPECT_NEAR(sum / kDraws, lambda, lambda * 0.1 + 0.1);
  }
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(6);
  double sum = 0;
  const int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / kDraws, 0.5, 0.05);
}

TEST(RngTest, ZipfFavorsLowRanks) {
  Rng rng(8);
  const uint64_t kN = 1000;
  uint64_t first = 0;
  uint64_t total = 20000;
  for (uint64_t i = 0; i < total; ++i) {
    uint64_t r = rng.Zipf(kN, 1.1);
    EXPECT_LT(r, kN);
    if (r == 0) ++first;
  }
  // Rank 0 should dominate: > 5% of draws for s=1.1, n=1000.
  EXPECT_GT(first, total / 20);
}

TEST(RngTest, PickWeightedRespectsWeights) {
  Rng rng(9);
  const double weights[] = {0.0, 1.0, 3.0};
  int counts[3] = {};
  for (int i = 0; i < 40000; ++i) {
    ++counts[rng.PickWeighted(weights)];
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.3);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(10);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  auto reshuffled = v;
  std::sort(reshuffled.begin(), reshuffled.end());
  EXPECT_EQ(reshuffled, sorted);
}

// -------------------------------------------------------------- hash

TEST(HashTest, Fnv1aStableAndSeedable) {
  EXPECT_EQ(Fnv1a64("abc"), Fnv1a64("abc"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abd"));
  EXPECT_NE(Fnv1a64("abc", 1), Fnv1a64("abc", 2));
}

TEST(HashTest, Mix64Avalanches) {
  EXPECT_NE(Mix64(1), Mix64(2));
  // Single-bit flips should change roughly half the output bits.
  int diff = __builtin_popcountll(Mix64(0x1000) ^ Mix64(0x1001));
  EXPECT_GT(diff, 16);
  EXPECT_LT(diff, 48);
}

// ------------------------------------------------------------ strings

TEST(StringsTest, ToLower) {
  EXPECT_EQ(ToLower("Hello World 123"), "hello world 123");
}

TEST(StringsTest, SplitDropsEmptyFields) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{}));
  EXPECT_EQ(Split(",,", ','), (std::vector<std::string>{}));
}

TEST(StringsTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"x", "y", "z"}, "/"), "x/y/z");
  EXPECT_EQ(Join({}, "/"), "");
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "ok"), "7-ok");
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KiB");
  EXPECT_EQ(HumanBytes(5 * 1024 * 1024), "5.0 MiB");
}

// --------------------------------------------------------------- time

TEST(TimeTest, SpanOverlap) {
  TimeSpan a{0, 100};
  TimeSpan b{50, 150};
  TimeSpan c{100, 200};
  EXPECT_TRUE(a.Overlaps(b));
  EXPECT_TRUE(b.Overlaps(a));
  EXPECT_FALSE(a.Overlaps(c));  // half-open: [0,100) and [100,200)
  EXPECT_TRUE(a.Contains(0));
  EXPECT_FALSE(a.Contains(100));
}

TEST(TimeTest, StillOpenSpanOverlapsEverythingLater) {
  TimeSpan open{50, kTimeMax};
  EXPECT_TRUE(open.Overlaps(TimeSpan{1000000, 1000001}));
  EXPECT_FALSE(open.Overlaps(TimeSpan{0, 50}));
}

// ------------------------------------------------------------- budget

TEST(BudgetTest, UnlimitedNeverExhausts) {
  QueryBudget b;
  for (int i = 0; i < 100000; ++i) EXPECT_TRUE(b.Charge());
  EXPECT_FALSE(b.exhausted());
}

TEST(BudgetTest, NodeCapStopsWork) {
  QueryBudget b = QueryBudget::WithNodeCap(100);
  uint64_t done = 0;
  while (b.Charge()) ++done;
  EXPECT_EQ(done, 100u);
  EXPECT_TRUE(b.exhausted());
  EXPECT_FALSE(b.Charge());  // stays exhausted
}

TEST(BudgetTest, DeadlineStopsWork) {
  QueryBudget b = QueryBudget::WithDeadlineMs(5);
  Stopwatch watch;
  while (b.Charge()) {
    if (watch.ElapsedMs() > 2000) FAIL() << "deadline never fired";
  }
  EXPECT_TRUE(b.exhausted());
  // Poll granularity: should stop within a small factor of the deadline.
  EXPECT_LT(watch.ElapsedMs(), 1000);
}

}  // namespace
}  // namespace bp::util
