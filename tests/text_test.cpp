// Tests for bp::text: tokenizer behaviour and the persistent inverted
// index (postings round-trips, BM25 ranking properties, flush semantics).
#include <gtest/gtest.h>

#include <algorithm>

#include "storage/env.hpp"
#include "text/index.hpp"
#include "text/tokenizer.hpp"
#include "util/rng.hpp"
#include "util/serde.hpp"

namespace bp::text {
namespace {

using storage::DbOptions;
using storage::MemEnv;

// ---------------------------------------------------------- tokenizer

TEST(TokenizerTest, LowercasesAndSplits) {
  EXPECT_EQ(Tokenize("Citizen Kane (1941)"),
            (std::vector<std::string>{"citizen", "kane", "1941"}));
}

TEST(TokenizerTest, DropsStopwordsAndShortTokens) {
  EXPECT_EQ(Tokenize("the rose and a bud"),
            (std::vector<std::string>{"rose", "bud"}));
}

TEST(TokenizerTest, BreaksUrlsIntoComponents) {
  auto tokens = Tokenize("https://www.wine-shop.com/bottles/pinot?q=noir");
  // http/https/www/com are stopworded; meaningful parts remain.
  EXPECT_EQ(tokens, (std::vector<std::string>{"wine", "shop", "bottles",
                                              "pinot", "noir"}));
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("... --- !!!").empty());
}

TEST(TokenizerTest, KeepsDuplicates) {
  EXPECT_EQ(Tokenize("wine wine wine").size(), 3u);
}

TEST(TokenizerTest, TermCountsAggregates) {
  auto counts = TermCounts("rosebud rosebud sled");
  EXPECT_EQ(counts["rosebud"], 2u);
  EXPECT_EQ(counts["sled"], 1u);
}

TEST(TokenizerTest, IsStopword) {
  EXPECT_TRUE(IsStopword("the"));
  EXPECT_TRUE(IsStopword("http"));
  EXPECT_FALSE(IsStopword("rosebud"));
}

// -------------------------------------------------------------- index

class IndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DbOptions opts;
    opts.env = &env_;
    auto db = storage::Db::Open("t.db", opts);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    auto index = InvertedIndex::Open(*db_, "hist");
    ASSERT_TRUE(index.ok());
    index_ = std::move(*index);
  }

  void Add(DocId doc, std::string_view content) {
    ASSERT_TRUE(index_->AddDocument(doc, Tokenize(content)).ok());
  }

  std::vector<DocId> SearchDocs(std::string_view query, size_t k = 10) {
    auto results = index_->Search(Tokenize(query), k);
    EXPECT_TRUE(results.ok());
    std::vector<DocId> docs;
    for (const auto& r : *results) docs.push_back(r.doc);
    return docs;
  }

  MemEnv env_;
  std::unique_ptr<storage::Db> db_;
  std::unique_ptr<InvertedIndex> index_;
};

TEST_F(IndexTest, FindsDocumentsByTerm) {
  Add(1, "rosebud sled mystery");
  Add(2, "rose garden flowers");
  Add(3, "citizen kane movie");
  auto docs = SearchDocs("rosebud");
  EXPECT_EQ(docs, (std::vector<DocId>{1}));
  EXPECT_TRUE(SearchDocs("absent").empty());
}

TEST_F(IndexTest, RanksHigherTfFirst) {
  Add(1, "wine wine wine bottles");
  Add(2, "wine article about many other topics entirely unrelated");
  auto docs = SearchDocs("wine");
  ASSERT_EQ(docs.size(), 2u);
  EXPECT_EQ(docs[0], 1u);
}

TEST_F(IndexTest, IdfFavorsRareTerms) {
  // "common" in all docs, "rare" in one; doc 3 has both.
  Add(1, "common alpha");
  Add(2, "common beta");
  Add(3, "common rare");
  Add(4, "common gamma");
  auto docs = SearchDocs("common rare");
  ASSERT_FALSE(docs.empty());
  EXPECT_EQ(docs[0], 3u);
  auto idf_rare = index_->Idf("rare");
  auto idf_common = index_->Idf("common");
  ASSERT_TRUE(idf_rare.ok() && idf_common.ok());
  EXPECT_GT(*idf_rare, *idf_common);
}

TEST_F(IndexTest, DisjunctiveAcrossTerms) {
  Add(1, "apples oranges");
  Add(2, "oranges pears");
  Add(3, "grapes");
  auto docs = SearchDocs("apples pears", 10);
  std::sort(docs.begin(), docs.end());
  EXPECT_EQ(docs, (std::vector<DocId>{1, 2}));
}

TEST_F(IndexTest, TopKLimit) {
  for (DocId d = 1; d <= 20; ++d) {
    Add(d, "shared term document");
  }
  EXPECT_EQ(SearchDocs("shared", 5).size(), 5u);
}

TEST_F(IndexTest, DocumentFrequencyAndCount) {
  Add(1, "xx yy");
  Add(2, "xx zz");
  EXPECT_EQ(*index_->DocumentFrequency("xx"), 2u);
  EXPECT_EQ(*index_->DocumentFrequency("yy"), 1u);
  EXPECT_EQ(*index_->DocumentFrequency("nope"), 0u);
  EXPECT_EQ(*index_->DocumentCount(), 2u);
}

TEST_F(IndexTest, PostingsIterationSortedByDoc) {
  Add(5, "term");
  Add(2, "term");
  Add(9, "term term");
  std::vector<Posting> postings;
  ASSERT_TRUE(index_
                  ->ForEachPosting("term",
                                   [&](const Posting& p) {
                                     postings.push_back(p);
                                     return true;
                                   })
                  .ok());
  ASSERT_EQ(postings.size(), 3u);
  EXPECT_EQ(postings[0].doc, 2u);
  EXPECT_EQ(postings[1].doc, 5u);
  EXPECT_EQ(postings[2].doc, 9u);
  EXPECT_EQ(postings[2].tf, 2u);
}

TEST_F(IndexTest, ReAddingDocMergesTf) {
  Add(1, "wine");
  ASSERT_TRUE(index_->Flush().ok());
  Add(1, "wine cellar");
  std::vector<Posting> postings;
  ASSERT_TRUE(index_
                  ->ForEachPosting("wine",
                                   [&](const Posting& p) {
                                     postings.push_back(p);
                                     return true;
                                   })
                  .ok());
  ASSERT_EQ(postings.size(), 1u);
  EXPECT_EQ(postings[0].tf, 2u);
  EXPECT_EQ(*index_->DocumentCount(), 1u);  // same doc, not a new one
}

TEST_F(IndexTest, PersistsAcrossReopen) {
  Add(1, "durable data");
  ASSERT_TRUE(index_->Flush().ok());
  index_.reset();
  db_.reset();

  DbOptions opts;
  opts.env = &env_;
  auto db = storage::Db::Open("t.db", opts);
  ASSERT_TRUE(db.ok());
  auto index = InvertedIndex::Open(**db, "hist");
  ASSERT_TRUE(index.ok());
  auto results = (*index)->Search({"durable"}, 10);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0].doc, 1u);
  EXPECT_EQ(*(*index)->DocumentCount(), 1u);
}

TEST_F(IndexTest, LargePostingsListSurvivesOverflowPages) {
  // Enough postings for one term to exceed an inline cell (forces the
  // B+tree overflow path under the index).
  for (DocId d = 1; d <= 3000; ++d) {
    ASSERT_TRUE(index_->AddDocument(d, {"hot"}).ok());
  }
  EXPECT_EQ(*index_->DocumentFrequency("hot"), 3000u);
  uint64_t seen = 0;
  DocId prev = 0;
  ASSERT_TRUE(index_
                  ->ForEachPosting("hot",
                                   [&](const Posting& p) {
                                     EXPECT_GT(p.doc, prev);
                                     prev = p.doc;
                                     ++seen;
                                     return true;
                                   })
                  .ok());
  EXPECT_EQ(seen, 3000u);
}

TEST_F(IndexTest, EmptyQueryAndZeroK) {
  Add(1, "something");
  EXPECT_TRUE(SearchDocs("", 10).empty());
  EXPECT_TRUE(SearchDocs("something", 0).empty());
}

TEST_F(IndexTest, RejectsReservedDocId) {
  EXPECT_THROW((void)index_->AddDocument(0, {"x"}), std::logic_error);
}

TEST_F(IndexTest, CorruptPostingCountIsRejectedNotAllocated) {
  // A flipped byte in the posting-count varint must surface as
  // Corruption, not as a reserve() of 2^60 entries: the count is only
  // trusted once the payload could plausibly back it (>= 2 bytes per
  // posting).
  Add(1, "rosebud");
  ASSERT_TRUE(index_->Flush().ok());
  storage::BTree* terms = *db_->OpenTree("hist.terms");
  util::Writer evil;
  evil.PutVarint64(uint64_t{1} << 60);  // count: ~10^18 postings
  evil.PutVarint64(1);                  // one lonely byte of payload
  ASSERT_TRUE(terms->Put("evil", evil.data()).ok());

  util::Status decoded = index_->ForEachPosting(
      "evil", [](const Posting&) { return true; });
  EXPECT_EQ(decoded.code(), util::StatusCode::kCorruption);
}

TEST_F(IndexTest, TruncatedPostingPayloadIsCorruption) {
  // Count says three postings, payload carries one and a half: the
  // decoder must report Corruption instead of fabricating entries from
  // a failed reader.
  storage::BTree* terms = *db_->OpenTree("hist.terms");
  util::Writer torn;
  torn.PutVarint64(3);  // count
  torn.PutVarint64(5);  // doc delta
  torn.PutVarint64(2);  // tf — then nothing for postings 2 and 3
  ASSERT_TRUE(terms->Put("torn", torn.data()).ok());

  util::Status decoded = index_->ForEachPosting(
      "torn", [](const Posting&) { return true; });
  EXPECT_EQ(decoded.code(), util::StatusCode::kCorruption);
}

}  // namespace
}  // namespace bp::text
