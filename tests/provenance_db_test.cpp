// ProvenanceDb facade: one Open stands up the whole stack, ingestion
// flows through the owned bus, every query works and reports its
// QueryStats, and extra sinks ride the same stream.
#include <gtest/gtest.h>

#include <memory>

#include "places/places.hpp"
#include "prov/provenance_db.hpp"
#include "sim/scenario.hpp"
#include "storage/env.hpp"

namespace bp::prov {
namespace {

class ProvenanceDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ProvenanceDb::Options options;
    options.db.env = &env_;
    auto db = ProvenanceDb::Open("facade.db", options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
  }

  // The quickstart session: search -> results -> film page -> archive ->
  // download.
  uint64_t IngestRosebudSession() {
    sim::ScenarioBuilder s;
    uint64_t search = s.Search(1, "rosebud");
    s.Wait(util::Seconds(1));
    uint64_t results =
        s.Visit(1, "https://search.example/results?q=rosebud",
                "rosebud - search results",
                capture::NavigationAction::kSearchResult, 0, search);
    s.Wait(util::Seconds(5));
    uint64_t kane = s.Visit(1, "http://films.example/citizen-kane",
                            "citizen kane 1941 film",
                            capture::NavigationAction::kLink, results);
    s.Wait(util::Seconds(5));
    uint64_t dl = s.Download("http://films.example/kane-script.pdf",
                             "/downloads/kane-script.pdf", kane);
    EXPECT_TRUE(db_->IngestAll(s.events()).ok());
    return dl;
  }

  storage::MemEnv env_;
  std::unique_ptr<ProvenanceDb> db_;
};

TEST_F(ProvenanceDbTest, SearchAfterIngestSeesNewPagesAndReportsStats) {
  IngestRosebudSession();
  // No explicit IndexNewPages call: the facade refreshes lazily.
  auto hits = db_->Search("rosebud");
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  ASSERT_FALSE(hits->pages.empty());
  bool found_kane = false;
  for (const auto& page : hits->pages) {
    if (page.url == "http://films.example/citizen-kane") found_kane = true;
  }
  EXPECT_TRUE(found_kane)
      << "contextual search must reach the page the term never names";
  EXPECT_GT(hits->stats.rows_scanned, 0u);
  EXPECT_GT(hits->stats.edges_expanded, 0u);

  // With a budget attached, the stats report what the query charged.
  util::QueryBudget budget = util::QueryBudget::WithNodeCap(1000000);
  search::ContextualSearchOptions options;
  options.budget = &budget;
  auto budgeted = db_->Search("rosebud", options);
  ASSERT_TRUE(budgeted.ok());
  EXPECT_GT(budgeted->stats.budget_used, 0u);
  EXPECT_EQ(budgeted->stats.budget_used, budget.used());
}

TEST_F(ProvenanceDbTest, TraceDownloadThroughFacade) {
  uint64_t dl = IngestRosebudSession();
  search::LineageOptions options;
  options.min_visit_count = 1;
  auto report =
      db_->TraceDownload(db_->recorder().download_map().at(dl), options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->found_recognizable);
  EXPECT_GT(report->stats.rows_scanned, 0u);
}

TEST_F(ProvenanceDbTest, DescendantDownloadsAndTimeContext) {
  IngestRosebudSession();
  auto descendants =
      db_->DescendantDownloads("https://search.example/results?q=rosebud");
  ASSERT_TRUE(descendants.ok());
  ASSERT_EQ(descendants->downloads.size(), 1u);
  EXPECT_EQ(descendants->downloads[0].target_path,
            "/downloads/kane-script.pdf");
  EXPECT_GT(descendants->stats.nodes_visited, 0u);

  auto tc = db_->TimeContext("citizen kane", "rosebud");
  ASSERT_TRUE(tc.ok());
  EXPECT_GT(tc->stats.rows_scanned, 0u);

  auto personalized = db_->Personalize("rosebud");
  ASSERT_TRUE(personalized.ok());
  EXPECT_GT(personalized->stats.rows_scanned, 0u);
}

TEST_F(ProvenanceDbTest, BatchRollsBackWithoutCommit) {
  sim::ScenarioBuilder s;
  s.Visit(1, "http://a.example/", "A", capture::NavigationAction::kTyped);
  {
    ProvenanceDb::Batch batch(*db_);
    ASSERT_TRUE(db_->Ingest(s.events()[0]).ok());
    // No Commit: destruction rolls the batch back.
  }
  EXPECT_TRUE(db_->store().PageForUrl("http://a.example/")
                  .status()
                  .IsNotFound());

  {
    ProvenanceDb::Batch batch(*db_);
    ASSERT_TRUE(db_->Ingest(s.events()[0]).ok());
    ASSERT_TRUE(batch.Commit().ok());
  }
  EXPECT_TRUE(db_->store().PageForUrl("http://a.example/").ok());
}

TEST_F(ProvenanceDbTest, ExtraSinksRideTheSameStream) {
  // The Places baseline subscribes to the facade's bus and sees exactly
  // the ingested stream — the setup of the storage-overhead experiment.
  auto places = places::PlacesStore::Open(db_->db());
  ASSERT_TRUE(places.ok());
  capture::PlacesRecorder baseline(**places);
  db_->bus().Subscribe(&baseline);

  IngestRosebudSession();
  // Both page visits reached both recorders.
  EXPECT_EQ(baseline.visit_map().size(), 2u);
  EXPECT_EQ(db_->recorder().visit_map().size(), 2u);
}

}  // namespace
}  // namespace bp::prov
