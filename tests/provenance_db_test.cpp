// ProvenanceDb facade: one Open stands up the whole stack, ingestion
// flows through the owned bus, every query works and reports its
// QueryStats, and extra sinks ride the same stream. Snapshot views
// (BeginSnapshot) expose the same query surface against a frozen
// commit horizon, isolated from — and concurrent with — ingestion.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "places/places.hpp"
#include "prov/provenance_db.hpp"
#include "sim/scenario.hpp"
#include "storage/buffer_pool.hpp"
#include "storage/env.hpp"

namespace bp::prov {
namespace {

class ProvenanceDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ProvenanceDb::Options options;
    options.db.env = &env_;
    auto db = ProvenanceDb::Open("facade.db", options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
  }

  // The quickstart session: search -> results -> film page -> archive ->
  // download.
  uint64_t IngestRosebudSession() {
    sim::ScenarioBuilder s;
    uint64_t search = s.Search(1, "rosebud");
    s.Wait(util::Seconds(1));
    uint64_t results =
        s.Visit(1, "https://search.example/results?q=rosebud",
                "rosebud - search results",
                capture::NavigationAction::kSearchResult, 0, search);
    s.Wait(util::Seconds(5));
    uint64_t kane = s.Visit(1, "http://films.example/citizen-kane",
                            "citizen kane 1941 film",
                            capture::NavigationAction::kLink, results);
    s.Wait(util::Seconds(5));
    uint64_t dl = s.Download("http://films.example/kane-script.pdf",
                             "/downloads/kane-script.pdf", kane);
    EXPECT_TRUE(db_->IngestAll(s.events()).ok());
    return dl;
  }

  storage::MemEnv env_;
  std::unique_ptr<ProvenanceDb> db_;
};

TEST_F(ProvenanceDbTest, SearchAfterIngestSeesNewPagesAndReportsStats) {
  IngestRosebudSession();
  // No explicit IndexNewPages call: the facade refreshes lazily.
  auto hits = db_->Search("rosebud");
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  ASSERT_FALSE(hits->pages.empty());
  bool found_kane = false;
  for (const auto& page : hits->pages) {
    if (page.url == "http://films.example/citizen-kane") found_kane = true;
  }
  EXPECT_TRUE(found_kane)
      << "contextual search must reach the page the term never names";
  EXPECT_GT(hits->stats.rows_scanned, 0u);
  EXPECT_GT(hits->stats.edges_expanded, 0u);

  // With a budget attached, the stats report what the query charged.
  util::QueryBudget budget = util::QueryBudget::WithNodeCap(1000000);
  search::ContextualSearchOptions options;
  options.budget = &budget;
  auto budgeted = db_->Search("rosebud", options);
  ASSERT_TRUE(budgeted.ok());
  EXPECT_GT(budgeted->stats.budget_used, 0u);
  EXPECT_EQ(budgeted->stats.budget_used, budget.used());
}

TEST_F(ProvenanceDbTest, TraceDownloadThroughFacade) {
  uint64_t dl = IngestRosebudSession();
  search::LineageOptions options;
  options.min_visit_count = 1;
  auto report =
      db_->TraceDownload(db_->recorder().download_map().at(dl), options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->found_recognizable);
  EXPECT_GT(report->stats.rows_scanned, 0u);
}

TEST_F(ProvenanceDbTest, DescendantDownloadsAndTimeContext) {
  IngestRosebudSession();
  auto descendants =
      db_->DescendantDownloads("https://search.example/results?q=rosebud");
  ASSERT_TRUE(descendants.ok());
  ASSERT_EQ(descendants->downloads.size(), 1u);
  EXPECT_EQ(descendants->downloads[0].target_path,
            "/downloads/kane-script.pdf");
  EXPECT_GT(descendants->stats.nodes_visited, 0u);

  auto tc = db_->TimeContext("citizen kane", "rosebud");
  ASSERT_TRUE(tc.ok());
  EXPECT_GT(tc->stats.rows_scanned, 0u);

  auto personalized = db_->Personalize("rosebud");
  ASSERT_TRUE(personalized.ok());
  EXPECT_GT(personalized->stats.rows_scanned, 0u);
}

TEST_F(ProvenanceDbTest, BatchRollsBackWithoutCommit) {
  sim::ScenarioBuilder s;
  s.Visit(1, "http://a.example/", "A", capture::NavigationAction::kTyped);
  {
    ProvenanceDb::Batch batch(*db_);
    ASSERT_TRUE(db_->Ingest(s.events()[0]).ok());
    // No Commit: destruction rolls the batch back.
  }
  EXPECT_TRUE(db_->store().PageForUrl("http://a.example/")
                  .status()
                  .IsNotFound());

  {
    ProvenanceDb::Batch batch(*db_);
    ASSERT_TRUE(db_->Ingest(s.events()[0]).ok());
    ASSERT_TRUE(batch.Commit().ok());
  }
  EXPECT_TRUE(db_->store().PageForUrl("http://a.example/").ok());
}

TEST_F(ProvenanceDbTest, SnapshotViewIsIsolatedFromLaterIngest) {
  IngestRosebudSession();
  auto view = db_->BeginSnapshot();
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  auto before = view->Search("rosebud");
  ASSERT_TRUE(before.ok());
  ASSERT_FALSE(before->pages.empty());

  // New rosebud-adjacent history lands AFTER the snapshot.
  sim::ScenarioBuilder s;
  uint64_t search = s.Search(2, "rosebud");
  s.Visit(2, "http://flowers.example/rosebud-care",
          "rosebud flower care tips",
          capture::NavigationAction::kSearchResult, 0, search);
  ASSERT_TRUE(db_->IngestAll(s.events()).ok());

  // The frozen view answers bit-identically...
  auto after = view->Search("rosebud");
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->pages.size(), before->pages.size());
  for (size_t i = 0; i < after->pages.size(); ++i) {
    EXPECT_EQ(after->pages[i].page, before->pages[i].page);
    EXPECT_EQ(after->pages[i].url, before->pages[i].url);
    EXPECT_DOUBLE_EQ(after->pages[i].total, before->pages[i].total);
    EXPECT_NE(after->pages[i].url, "http://flowers.example/rosebud-care");
  }
  // ...while a one-shot query (fresh snapshot per call) sees the
  // flower page.
  auto live = db_->Search("rosebud");
  ASSERT_TRUE(live.ok());
  bool found_flowers = false;
  for (const auto& page : live->pages) {
    if (page.url == "http://flowers.example/rosebud-care") {
      found_flowers = true;
    }
  }
  EXPECT_TRUE(found_flowers);
  EXPECT_GT(db_->BeginSnapshot()->commit_seq(), view->commit_seq());
}

TEST_F(ProvenanceDbTest, SnapshotViewExposesTheFullQuerySurface) {
  uint64_t dl = IngestRosebudSession();
  auto view = db_->BeginSnapshot();
  ASSERT_TRUE(view.ok()) << view.status().ToString();

  search::LineageOptions lineage_options;
  lineage_options.min_visit_count = 1;
  auto lineage = view->TraceDownload(
      db_->recorder().download_map().at(dl), lineage_options);
  ASSERT_TRUE(lineage.ok());
  EXPECT_TRUE(lineage->found_recognizable);

  auto descendants = view->DescendantDownloads(
      "https://search.example/results?q=rosebud");
  ASSERT_TRUE(descendants.ok());
  ASSERT_EQ(descendants->downloads.size(), 1u);

  auto textual = view->TextualSearch("rosebud");
  ASSERT_TRUE(textual.ok());
  EXPECT_FALSE(textual->pages.empty());

  auto personalized = view->Personalize("rosebud");
  ASSERT_TRUE(personalized.ok());

  auto tc = view->TimeContext("citizen kane", "rosebud");
  ASSERT_TRUE(tc.ok());
  EXPECT_GT(tc->stats.rows_scanned, 0u);

  // Raw cursors over the frozen graph.
  graph::QueryStats stats;
  uint64_t nodes = 0;
  for (auto cur = view->Nodes(1, &stats); cur.Valid(); cur.Next()) ++nodes;
  EXPECT_GT(nodes, 0u);
  EXPECT_GT(stats.rows_scanned, 0u);
}

TEST_F(ProvenanceDbTest, SyncAndCheckpointThroughTheFacade) {
  IngestRosebudSession();
  // sync=true MemEnv default? The facade default options use the test
  // env with sync on; Sync flushes any partially filled group-commit
  // window, Checkpoint folds the log.
  ASSERT_TRUE(db_->Sync().ok());
  ASSERT_TRUE(db_->Checkpoint().ok());
  EXPECT_GT(db_->storage_stats().checkpoints, 0u);

  // A live snapshot pins WAL frames: the explicit checkpoint refuses.
  auto view = db_->BeginSnapshot();
  ASSERT_TRUE(view.ok());
  util::Status pinned = db_->Checkpoint();
  EXPECT_EQ(pinned.code(), util::StatusCode::kFailedPrecondition);
  EXPECT_TRUE(db_->Sync().ok());  // durability flush is always allowed
  view = util::Status::NotFound();  // drop the view, releasing the pin
  EXPECT_TRUE(db_->Checkpoint().ok());
}

TEST_F(ProvenanceDbTest, MidBatchOneShotQueriesReadTheirOwnWrites) {
  // Inside an open Batch a snapshot would exclude the batch's own
  // (uncommitted) events, so one-shot queries stay on the live
  // serialized path there and see them.
  sim::ScenarioBuilder s;
  s.Visit(1, "http://fresh.example/", "zanzibar fresh page",
          capture::NavigationAction::kTyped);
  {
    ProvenanceDb::Batch batch(*db_);
    ASSERT_TRUE(db_->Ingest(s.events()[0]).ok());
    auto hits = db_->Search("zanzibar");
    ASSERT_TRUE(hits.ok()) << hits.status().ToString();
    EXPECT_FALSE(hits->pages.empty())
        << "mid-batch query must read the batch's own writes";
    // An explicit snapshot, by contrast, cannot honor its contract
    // mid-batch and refuses.
    EXPECT_EQ(db_->BeginSnapshot().status().code(),
              util::StatusCode::kFailedPrecondition);
    ASSERT_TRUE(batch.Commit().ok());
  }
  // After the batch, the (now snapshot-backed) one-shot path agrees.
  auto hits = db_->Search("zanzibar");
  ASSERT_TRUE(hits.ok());
  EXPECT_FALSE(hits->pages.empty());
}

TEST_F(ProvenanceDbTest, RolledBackBatchDoesNotPoisonTheTextIndex) {
  // A mid-batch query indexes the batch's (uncommitted) pages; if the
  // batch then rolls back, the searcher must rewind its watermark —
  // otherwise later pages reusing those node ids are never indexed.
  sim::ScenarioBuilder s;
  s.Visit(1, "http://q.example/", "quokka habitat facts",
          capture::NavigationAction::kTyped);
  {
    ProvenanceDb::Batch batch(*db_);
    ASSERT_TRUE(db_->Ingest(s.events()[0]).ok());
    auto mid = db_->Search("quokka");
    ASSERT_TRUE(mid.ok());
    EXPECT_FALSE(mid->pages.empty());
    // No Commit: everything rolls back.
  }
  auto gone = db_->Search("quokka");
  ASSERT_TRUE(gone.ok());
  EXPECT_TRUE(gone->pages.empty());

  // Fresh pages now reuse the rolled-back node ids; they must be
  // searchable.
  sim::ScenarioBuilder again;
  again.Visit(1, "http://q2.example/", "quokka selfie guide",
              capture::NavigationAction::kTyped);
  ASSERT_TRUE(db_->IngestAll(again.events()).ok());
  auto found = db_->Search("quokka");
  ASSERT_TRUE(found.ok());
  ASSERT_FALSE(found->pages.empty())
      << "page with a reused node id was skipped by the indexer";
  EXPECT_EQ(found->pages[0].url, "http://q2.example/");
}

TEST_F(ProvenanceDbTest, JournalModeFallsBackToSerializedQueries) {
  storage::MemEnv env;
  ProvenanceDb::Options options;
  options.db.env = &env;
  options.db.durability = storage::DurabilityMode::kRollbackJournal;
  auto db = ProvenanceDb::Open("journal.db", options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  sim::ScenarioBuilder s;
  s.Visit(1, "http://a.example/", "alpha page",
          capture::NavigationAction::kTyped);
  ASSERT_TRUE((*db)->IngestAll(s.events()).ok());

  // No snapshots in journal mode, but the one-shot queries still work
  // (serialized against ingestion) and the durability controls no-op.
  EXPECT_EQ((*db)->BeginSnapshot().status().code(),
            util::StatusCode::kFailedPrecondition);
  auto hits = (*db)->Search("alpha");
  ASSERT_TRUE(hits.ok());
  EXPECT_FALSE(hits->pages.empty());
  EXPECT_TRUE((*db)->Sync().ok());
  EXPECT_TRUE((*db)->Checkpoint().ok());
}

TEST_F(ProvenanceDbTest, ConcurrentReadersDuringIngest) {
  IngestRosebudSession();

  std::atomic<bool> done{false};
  std::atomic<uint64_t> queries{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        auto view = db_->BeginSnapshot();
        if (!view.ok()) {
          ++errors;
          return;
        }
        auto hits = view->Search("rosebud");
        auto one_shot = db_->Search("kane");
        if (!hits.ok() || hits->pages.empty() || !one_shot.ok()) {
          ++errors;
          return;
        }
        queries.fetch_add(2, std::memory_order_relaxed);
      }
    });
  }

  // The writer keeps ingesting fresh sessions until every reader has
  // completed at least one full iteration (bounded by a safety cap so a
  // wedged reader cannot hang the test).
  for (int batch = 0; batch < 3000 && queries.load() < 6; ++batch) {
    sim::ScenarioBuilder s;
    uint64_t search = s.Search(1, "rosebud");
    uint64_t results = s.Visit(
        1, "https://search.example/results?q=rosebud&page=" +
               std::to_string(batch),
        "rosebud results " + std::to_string(batch),
        capture::NavigationAction::kSearchResult, 0, search);
    s.Visit(1, "http://films.example/kane-" + std::to_string(batch),
            "kane fan page " + std::to_string(batch),
            capture::NavigationAction::kLink, results);
    ASSERT_TRUE(db_->IngestAll(s.events()).ok());
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_GT(queries.load(), 0u);
}

TEST_F(ProvenanceDbTest, AsyncIngestMatchesSynchronousIngest) {
  // The same session through both write paths lands in the same state:
  // IngestAsync + Drain is IngestAll minus the capture-thread stall.
  uint64_t dl_sync = IngestRosebudSession();

  storage::MemEnv async_env;
  ProvenanceDb::Options options;
  options.db.env = &async_env;
  auto async_db = ProvenanceDb::Open("facade-async.db", options);
  ASSERT_TRUE(async_db.ok());
  sim::ScenarioBuilder s;
  uint64_t search = s.Search(1, "rosebud");
  s.Wait(util::Seconds(1));
  uint64_t results =
      s.Visit(1, "https://search.example/results?q=rosebud",
              "rosebud - search results",
              capture::NavigationAction::kSearchResult, 0, search);
  s.Wait(util::Seconds(5));
  uint64_t kane = s.Visit(1, "http://films.example/citizen-kane",
                          "citizen kane 1941 film",
                          capture::NavigationAction::kLink, results);
  s.Wait(util::Seconds(5));
  uint64_t dl = s.Download("http://films.example/kane-script.pdf",
                           "/downloads/kane-script.pdf", kane);
  for (const auto& event : s.events()) {
    ASSERT_TRUE((*async_db)->IngestAsync(event).ok());
  }
  ASSERT_TRUE((*async_db)->Drain().ok());

  EXPECT_EQ(*(*async_db)->store().NodeCount(), *db_->store().NodeCount());
  EXPECT_EQ(*(*async_db)->store().EdgeCount(), *db_->store().EdgeCount());
  auto sync_hits = db_->Search("rosebud");
  auto async_hits = (*async_db)->Search("rosebud");
  ASSERT_TRUE(sync_hits.ok());
  ASSERT_TRUE(async_hits.ok());
  ASSERT_EQ(async_hits->pages.size(), sync_hits->pages.size());
  for (size_t i = 0; i < sync_hits->pages.size(); ++i) {
    EXPECT_EQ(async_hits->pages[i].url, sync_hits->pages[i].url);
  }
  search::LineageOptions lineage_options;
  lineage_options.min_visit_count = 1;
  auto sync_trace = db_->TraceDownload(
      db_->recorder().download_map().at(dl_sync), lineage_options);
  auto async_trace = (*async_db)->TraceDownload(
      (*async_db)->recorder().download_map().at(dl), lineage_options);
  ASSERT_TRUE(sync_trace.ok());
  ASSERT_TRUE(async_trace.ok());
  EXPECT_EQ(async_trace->path.size(), sync_trace->path.size());
}

TEST_F(ProvenanceDbTest, ExtraSinksRideTheSameStream) {
  // The Places baseline subscribes to the facade's bus and sees exactly
  // the ingested stream — the setup of the storage-overhead experiment.
  auto places = places::PlacesStore::Open(db_->db());
  ASSERT_TRUE(places.ok());
  capture::PlacesRecorder baseline(**places);
  db_->bus().Subscribe(&baseline);

  IngestRosebudSession();
  // Both page visits reached both recorders.
  EXPECT_EQ(baseline.visit_map().size(), 2u);
  EXPECT_EQ(db_->recorder().visit_map().size(), 2u);
}

TEST_F(ProvenanceDbTest, PoolCountersStayConsistentAcrossOneShotQueries) {
  // Cross-counter consistency, end to end: every pool-consulted page
  // fetch on the snapshot read path is either a pool hit or a storage
  // read that pays a pool miss first, so over any read-only window
  //   delta(pool_hits + pool_misses)
  //     == delta(snapshot_pool_hits + snapshot_pages_read).
  // A drift here means a fetch path stopped consulting the pool (or
  // double-counts) — exactly the accounting bug dashboards built on
  // these counters would silently absorb.
  uint64_t dl = IngestRosebudSession();
  const prov::NodeId download = db_->recorder().download_map().at(dl);
  // Settle the lazy text index so the measured window is read-only.
  ASSERT_TRUE(db_->Search("rosebud").ok());

  const storage::PagerStats before = db_->storage_stats();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(db_->Search("rosebud").ok());
    ASSERT_TRUE(db_->TraceDownload(download).ok());
  }
  const storage::PagerStats after = db_->storage_stats();

  // Guard: the window really was read-only (no writer-pager fetches,
  // which consult the pool without the snapshot counters).
  ASSERT_EQ(after.cache_misses, before.cache_misses);

  const uint64_t pool_lookups = (after.pool_hits + after.pool_misses) -
                                (before.pool_hits + before.pool_misses);
  const uint64_t snapshot_fetches =
      (after.snapshot_pool_hits + after.snapshot_pages_read) -
      (before.snapshot_pool_hits + before.snapshot_pages_read);
  EXPECT_EQ(pool_lookups, snapshot_fetches);
  // Repeated identical queries must actually warm the pool.
  EXPECT_GT(after.pool_hits, before.pool_hits);
}

TEST_F(ProvenanceDbTest, DebugDumpExportsMetricsAndSpans) {
  uint64_t dl = IngestRosebudSession();
  ASSERT_TRUE(db_->Search("rosebud").ok());
  ASSERT_TRUE(
      db_->TraceDownload(db_->recorder().download_map().at(dl)).ok());

  const std::string json = db_->DebugDump();
  EXPECT_NE(json.find("\"schema\": \"bp-metrics-v1\""), std::string::npos);
  EXPECT_NE(json.find("bp_commit_us"), std::string::npos);
  EXPECT_NE(json.find("bp_query_us"), std::string::npos);
  EXPECT_NE(json.find("family=\\\"search\\\""), std::string::npos);
  EXPECT_NE(json.find("bp_pager_commits"), std::string::npos);
  EXPECT_NE(json.find("db=\\\"facade.db\\\""), std::string::npos);
  EXPECT_NE(json.find("\"slow_spans\""), std::string::npos);

  const std::string text = db_->DebugDumpText();
  EXPECT_NE(text.find("# TYPE bp_commit_us summary"), std::string::npos);
  EXPECT_NE(text.find("bp_pager_commits{db=\"facade.db\"}"),
            std::string::npos);
}

TEST_F(ProvenanceDbTest, OpenRejectsUnusableOptions) {
  ProvenanceDb::Options options;
  options.db.env = &env_;
  options.ingest_batch = 0;
  EXPECT_EQ(ProvenanceDb::Open("bad.db", options).status().code(),
            util::StatusCode::kInvalidArgument);

  options = ProvenanceDb::Options();
  options.db.env = &env_;
  options.async.queue_capacity = 0;
  EXPECT_EQ(ProvenanceDb::Open("bad.db", options).status().code(),
            util::StatusCode::kInvalidArgument);

  // queue_capacity is only meaningful with the pipeline on: disabled
  // async makes the zero harmless and Open must accept it.
  options.async.enabled = false;
  EXPECT_TRUE(ProvenanceDb::Open("ok.db", options).ok());
}

TEST_F(ProvenanceDbTest, CloseDrainsCheckpointsAndSupportsReopen) {
  IngestRosebudSession();
  sim::ScenarioBuilder s;
  s.Visit(1, "http://late.example/", "late page",
          capture::NavigationAction::kTyped);
  ASSERT_TRUE(db_->IngestAsync(s.events()[0]).ok());

  // Close drains the pipeline (the async event must not be lost) and
  // checkpoints the WAL into the main file.
  ASSERT_TRUE(db_->Close().ok());
  EXPECT_TRUE(db_->Close().ok()) << "Close must be idempotent";

  // storage_stats() keeps answering with the final pre-close counters.
  storage::PagerStats final_stats = db_->storage_stats();
  EXPECT_GT(final_stats.commits, 0u);
  EXPECT_EQ(final_stats.commits, db_->storage_stats().commits);

  // Reopen on the same env sees everything committed before Close.
  ProvenanceDb::Options options;
  options.db.env = &env_;
  auto reopened = ProvenanceDb::Open("facade.db", options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE((*reopened)->store().PageForUrl("http://late.example/").ok());
  EXPECT_TRUE((*reopened)
                  ->store()
                  .PageForUrl("http://films.example/citizen-kane")
                  .ok());
}

TEST_F(ProvenanceDbTest, EveryOperationFailsCleanlyAfterClose) {
  IngestRosebudSession();
  ASSERT_TRUE(db_->Close().ok());

  sim::ScenarioBuilder s;
  s.Visit(1, "http://x.example/", "x", capture::NavigationAction::kTyped);
  const auto closed = util::StatusCode::kFailedPrecondition;
  EXPECT_EQ(db_->Ingest(s.events()[0]).code(), closed);
  EXPECT_EQ(db_->IngestAll(s.events()).code(), closed);
  EXPECT_EQ(db_->IngestAsync(s.events()[0]).status().code(), closed);
  EXPECT_EQ(db_->Flush(ProvenanceDb::IngestTicket{}).code(), closed);
  EXPECT_EQ(db_->Drain().code(), closed);
  EXPECT_EQ(db_->Sync().code(), closed);
  EXPECT_EQ(db_->Checkpoint().code(), closed);
  EXPECT_EQ(db_->Search("rosebud").status().code(), closed);
  EXPECT_EQ(db_->TextualSearch("rosebud").status().code(), closed);
  EXPECT_EQ(db_->Personalize("rosebud").status().code(), closed);
  EXPECT_EQ(db_->TimeContext("a", "b").status().code(), closed);
  EXPECT_EQ(db_->TraceDownload(1).status().code(), closed);
  EXPECT_EQ(db_->DescendantDownloads("http://x.example/").status().code(),
            closed);
  EXPECT_EQ(db_->BeginSnapshot().status().code(), closed);
  // DebugDump is registry-backed and must keep working.
  EXPECT_NE(db_->DebugDump().find("bp-metrics-v1"), std::string::npos);
}

TEST_F(ProvenanceDbTest, TwoDbsShareOneInjectedPoolBudget) {
  // Two databases, one injected BufferPool: one global byte budget,
  // concurrent readers on both, per-db counters stay consistent (with
  // a shared pool, PagerStats reports the POOL's totals — both handles
  // must agree with each other and with the pool), and closing one
  // database releases its frames without disturbing the other. Runs
  // under TSan in CI with the rest of the suite.
  const size_t budget = storage::BufferPool::kShards * 4 * storage::kPageSize;
  auto pool = std::make_shared<storage::BufferPool>(budget);
  ProvenanceDb::Options options;
  options.db.env = &env_;
  options.db.buffer_pool = pool;
  // Injected pool: pool_bytes = 0 defers to the pool's own budget
  // (leaving the default would contradict it — InvalidArgument).
  options.db.pool_bytes = 0;

  auto a = ProvenanceDb::Open("shared_a.db", options);
  auto b = ProvenanceDb::Open("shared_b.db", options);
  ASSERT_TRUE(a.ok() && b.ok());

  auto fill = [](ProvenanceDb& db, const std::string& host) {
    sim::ScenarioBuilder s;
    for (int i = 0; i < 120; ++i) {
      s.Visit(1, "http://" + host + "/p" + std::to_string(i),
              host + " page " + std::to_string(i),
              capture::NavigationAction::kTyped);
      s.Wait(util::Seconds(1));
    }
    ASSERT_TRUE(db.IngestAll(s.events()).ok());
  };
  fill(**a, "a.example");
  fill(**b, "b.example");

  std::vector<std::thread> readers;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      ProvenanceDb& db = (t % 2 == 0) ? **a : **b;
      const std::string host = (t % 2 == 0) ? "a.example" : "b.example";
      for (int i = 0; i < 40; ++i) {
        // Concurrent point reads go through a snapshot: the live
        // store() read path belongs to ONE thread by the pager's
        // single-writer contract.
        auto view = db.BeginSnapshot();
        if (!view.ok() ||
            !view->store()
                 .PageForUrl("http://" + host + "/p" + std::to_string(i % 120))
                 .ok()) {
          failures.fetch_add(1);
        }
        if (!db.TextualSearch("page").ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(failures.load(), 0);

  // Quiesced: both handles and the pool itself agree on the counters.
  storage::BufferPoolStats pool_stats = pool->stats();
  storage::PagerStats stats_a = (*a)->storage_stats();
  storage::PagerStats stats_b = (*b)->storage_stats();
  EXPECT_EQ(stats_a.pool_hits, pool_stats.hits);
  EXPECT_EQ(stats_b.pool_hits, pool_stats.hits);
  EXPECT_EQ(stats_a.pool_misses, pool_stats.misses);
  EXPECT_GT(pool_stats.hits + pool_stats.misses, 0u);
  // The budget is soft only while readers pin frames; none are live
  // now, so at most one unpinned straggler per shard can remain from
  // an eviction scan that gave up early.
  EXPECT_LE(pool_stats.bytes,
            budget + storage::BufferPool::kShards * storage::kPageSize);

  // Closing one database releases its share of the pool; the other
  // keeps working and the pool keeps serving it. Warm one query first
  // so `a` definitely has resident frames to release.
  ASSERT_TRUE((*a)->TextualSearch("page").ok());
  const uint64_t frames_before = pool->stats().frames;
  ASSERT_TRUE((*a)->Close().ok());
  EXPECT_LT(pool->stats().frames, frames_before);
  EXPECT_TRUE((*b)->TextualSearch("page").ok());
  ASSERT_TRUE((*b)->Close().ok());
}

TEST_F(ProvenanceDbTest, CloseRefusesWhileASnapshotViewIsLive) {
  IngestRosebudSession();
  {
    auto view = db_->BeginSnapshot();
    ASSERT_TRUE(view.ok());
    EXPECT_EQ(db_->Close().code(), util::StatusCode::kFailedPrecondition);
    // The refused Close must not have torn anything down.
    EXPECT_TRUE(view->Search("rosebud").ok());
  }
  EXPECT_TRUE(db_->Close().ok());
}

}  // namespace
}  // namespace bp::prov
