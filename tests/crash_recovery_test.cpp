// Cross-stream crash recovery tests for partitioned write domains.
//
// A two-domain database keeps TWO write-ahead log streams (graph on
// stream 0, text index on stream 1), each with its own group-commit
// clock, joined at recovery by a commit-sequence merge: replay the
// merged sequences contiguously from the highest base and discard
// everything above the first gap (a gap means some stream lost its
// tail — later transactions may depend on pages the missing one
// allocated). These tests prove the property the design hangs on:
// EVERY crash point recovers to a mutually consistent merged-sequence
// prefix — never a state where one stream's effects are visible past a
// lost commit of the other.
//
//   1. FoldStreamsTest — the merge itself, on hand-built streams: gap
//      truncation, base-sequence anchoring, torn tails.
//   2. CrossStreamCrashInjectionPropertyTest — the full stack: a
//      scripted two-domain workload with the MemEnv op log recording
//      every byte that hits the "disk"; then, for every prefix of the
//      op sequence (plus torn cuts through the next write), restore,
//      replay, REOPEN, and require the recovered database to be
//      exactly a transaction boundary state of the merged order.
//
// Runs under TSan and ASan+UBSan in CI like the rest of the suite.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "storage/btree.hpp"
#include "storage/db.hpp"
#include "storage/env.hpp"
#include "storage/pager.hpp"
#include "util/serde.hpp"
#include "wal/checkpointer.hpp"
#include "wal/wal_writer.hpp"

namespace bp::wal {
namespace {

using storage::Db;
using storage::DbOptions;
using storage::DurabilityMode;
using storage::kGraphDomain;
using storage::kPageSize;
using storage::kTextDomain;
using storage::MemEnv;
using storage::MemEnvOp;
using util::OrderedKeyU64;

std::string Page(char fill) { return std::string(kPageSize, fill); }

// ------------------------------------------------- FoldStreams merge

TEST(FoldStreamsTest, MergesInterleavedStreamsInSequenceOrder) {
  MemEnv env;
  {
    auto db_file = env.Open("db");
    ASSERT_TRUE((*db_file)->Write(0, Page('0')).ok());
  }
  // Sequences 1,3 on stream 0; 2,4 on stream 1. Both streams rewrite
  // page 1 — the merged order must leave the HIGHEST sequence's image.
  auto s0 = WalWriter::Open(&env, "db.wal", 0, 0);
  auto s1 = WalWriter::Open(&env, "db.wal1", 1, 0);
  ASSERT_TRUE(s0.ok() && s1.ok());
  (*s0)->AddPage(1, Page('A'));
  ASSERT_TRUE((*s0)->CommitTxn(1, 2).ok());
  (*s1)->AddPage(1, Page('B'));
  ASSERT_TRUE((*s1)->CommitTxn(2, 2).ok());
  (*s0)->AddPage(1, Page('C'));
  ASSERT_TRUE((*s0)->CommitTxn(3, 2).ok());
  (*s1)->AddPage(1, Page('D'));
  (*s1)->AddPage(2, Page('E'));
  ASSERT_TRUE((*s1)->CommitTxn(4, 3).ok());

  auto db_file = env.Open("db");
  auto folded = Checkpointer::FoldStreams(&env, db_file->get(),
                                          {"db.wal", "db.wal1"}, true);
  ASSERT_TRUE(folded.ok());
  EXPECT_TRUE(folded->ran);
  EXPECT_EQ(folded->commits, 4u);
  EXPECT_EQ(folded->last_commit_seq, 4u);
  EXPECT_EQ(folded->page_count, 3u);

  std::string out;
  ASSERT_TRUE((*db_file)->Read(kPageSize, 2 * kPageSize, &out).ok());
  EXPECT_EQ(out.substr(0, kPageSize), Page('D'));  // seq 4 wins
  EXPECT_EQ(out.substr(kPageSize, kPageSize), Page('E'));
}

TEST(FoldStreamsTest, GapTruncatesToMutuallyConsistentPrefix) {
  MemEnv env;
  {
    auto db_file = env.Open("db");
    ASSERT_TRUE((*db_file)->Write(0, Page('0')).ok());
  }
  // Stream 0 holds sequences 1 and 3; stream 1 LOST sequence 2 (its
  // file is a bare header — the crash tore its whole tail off). Seq 3
  // may depend on pages seq 2 allocated, so recovery must stop at 1.
  auto s0 = WalWriter::Open(&env, "db.wal", 0, 0);
  auto s1 = WalWriter::Open(&env, "db.wal1", 1, 0);
  ASSERT_TRUE(s0.ok() && s1.ok());
  (*s0)->AddPage(1, Page('A'));
  ASSERT_TRUE((*s0)->CommitTxn(1, 2).ok());
  (*s0)->AddPage(1, Page('C'));
  (*s0)->AddPage(2, Page('X'));
  ASSERT_TRUE((*s0)->CommitTxn(3, 3).ok());

  auto db_file = env.Open("db");
  auto folded = Checkpointer::FoldStreams(&env, db_file->get(),
                                          {"db.wal", "db.wal1"}, true);
  ASSERT_TRUE(folded.ok());
  EXPECT_TRUE(folded->ran);
  EXPECT_EQ(folded->commits, 1u) << "seq 3 must fall with the seq-2 gap";
  EXPECT_EQ(folded->last_commit_seq, 1u);
  EXPECT_EQ(folded->page_count, 2u);

  std::string out;
  ASSERT_TRUE((*db_file)->Read(kPageSize, kPageSize, &out).ok());
  EXPECT_EQ(out, Page('A'));  // seq 1 applied, seq 3 discarded
}

TEST(FoldStreamsTest, BaseSeqAnchorsSkipAlreadyFoldedCommits) {
  MemEnv env;
  {
    auto db_file = env.Open("db");
    ASSERT_TRUE((*db_file)->Write(0, Page('0') + Page('F')).ok());
  }
  // Stream 1 was reset at a checkpoint that folded through seq 5 (its
  // base), then logged seq 6. Stream 0 is STALE: it still holds seq 5
  // from before that checkpoint (crash between fold and reset). The
  // fold must anchor at B = max(bases) = 5, skip the stale seq-5
  // frames, and apply only seq 6.
  auto s0 = WalWriter::Open(&env, "db.wal", 0, 3);
  auto s1 = WalWriter::Open(&env, "db.wal1", 1, 5);
  ASSERT_TRUE(s0.ok() && s1.ok());
  (*s0)->AddPage(1, Page('S'));  // stale pre-checkpoint image
  ASSERT_TRUE((*s0)->CommitTxn(5, 2).ok());
  (*s1)->AddPage(1, Page('N'));
  ASSERT_TRUE((*s1)->CommitTxn(6, 2).ok());

  auto db_file = env.Open("db");
  auto folded = Checkpointer::FoldStreams(&env, db_file->get(),
                                          {"db.wal", "db.wal1"}, true);
  ASSERT_TRUE(folded.ok());
  EXPECT_TRUE(folded->ran);
  EXPECT_EQ(folded->commits, 1u);
  EXPECT_EQ(folded->last_commit_seq, 6u);

  std::string out;
  ASSERT_TRUE((*db_file)->Read(kPageSize, kPageSize, &out).ok());
  EXPECT_EQ(out, Page('N')) << "stale pre-checkpoint frame must lose";
}

// ------------------------- crash at every prefix, across both streams

// The database state a crash point must recover to: the graph tree and
// the text tree TOGETHER — the whole point is that they stay mutually
// consistent as one merged prefix.
struct TwoTreeModel {
  std::map<uint64_t, std::string> graph;
  std::map<uint64_t, std::string> text;
  bool operator==(const TwoTreeModel& o) const {
    return graph == o.graph && text == o.text;
  }
};

TwoTreeModel ReadTrees(storage::BTree* g, storage::BTree* x) {
  TwoTreeModel out;
  EXPECT_TRUE(g->ForEach([&](std::string_view key, std::string_view v) {
                   out.graph[util::DecodeOrderedKeyU64(key)] =
                       std::string(v);
                   return true;
                 })
                  .ok());
  EXPECT_TRUE(x->ForEach([&](std::string_view key, std::string_view v) {
                   out.text[util::DecodeOrderedKeyU64(key)] =
                       std::string(v);
                   return true;
                 })
                  .ok());
  return out;
}

struct TxnBoundary {
  size_t ops_done = 0;  // op-log length right after this txn's Commit
  TwoTreeModel state;   // expected contents at that point
};

// Scripted two-domain workload: graph transactions ride stream 0, text
// transactions stream 1. Every text transaction writes a marker
// summarizing how many graph transactions it has observed — so a
// recovery that surfaced a text state from beyond a lost graph commit
// would not merely differ, it would be semantically inconsistent (the
// exact-state check below subsumes the marker check; the marker makes
// the workload's cross-domain dependency real rather than incidental).
void RunCrossStreamCrashInjection(
    uint32_t wal_group_commit, uint64_t checkpoint_bytes,
    storage::compress::CompressionOptions::Mode compression =
        storage::compress::CompressionOptions::Mode::kOff) {
  MemEnv env;
  DbOptions opts;
  opts.env = &env;
  opts.durability = DurabilityMode::kWal;
  opts.write_domains = 2;
  opts.wal_group_commit = wal_group_commit;
  opts.wal_checkpoint_bytes = checkpoint_bytes;
  opts.compression.mode = compression;

  // Set up the database (catalog + both trees) BEFORE logging starts,
  // so every crash point has a well-formed database underneath it.
  {
    auto db = Db::Open("db", opts);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateTree("g").ok());
    ASSERT_TRUE((*db)->CreateTree("x").ok());
  }
  auto base = env.SnapshotAll();

  std::vector<TxnBoundary> boundaries;
  std::vector<MemEnvOp> ops;
  {
    env.StartOpLog();
    auto db = Db::Open("db", opts);
    ASSERT_TRUE(db.ok());
    auto g = (*db)->OpenTree("g");
    auto x = (*db)->OpenTree("x");
    ASSERT_TRUE(g.ok() && x.ok());
    TwoTreeModel model;
    boundaries.push_back({env.OpLogSize(), model});  // empty trees
    int graph_txns = 0;
    for (int t = 0; t < 18; ++t) {
      if (t % 3 != 2) {
        // Graph transaction on stream 0.
        ASSERT_TRUE((*db)->pager().Begin(kGraphDomain).ok());
        for (int i = 0; i < 3; ++i) {
          uint64_t key = (t * 7 + i * 3) % 20;
          std::string value = "g" + std::to_string(t) + "v" +
                              std::string(40 + (t % 5) * 25, 'x');
          ASSERT_TRUE((*g)->Put(OrderedKeyU64(key), value).ok());
          model.graph[key] = value;
        }
        ASSERT_TRUE((*db)->Commit().ok());
        ++graph_txns;
      } else {
        // Text transaction on stream 1, carrying the cross-domain
        // marker plus its own payload.
        ASSERT_TRUE((*db)->pager().Begin(kTextDomain).ok());
        std::string marker = "seen" + std::to_string(graph_txns);
        ASSERT_TRUE((*x)->Put(OrderedKeyU64(0), marker).ok());
        model.text[0] = marker;
        uint64_t key = 1 + (t % 7);
        std::string value =
            "x" + std::to_string(t) + std::string(60, 'y');
        ASSERT_TRUE((*x)->Put(OrderedKeyU64(key), value).ok());
        model.text[key] = value;
        ASSERT_TRUE((*db)->Commit().ok());
      }
      boundaries.push_back({env.OpLogSize(), model});

      // Uncommitted mutations on BOTH domains between transactions:
      // they must never surface, whichever stream the crash tears.
      const auto domain = (t % 2 == 0) ? kGraphDomain : kTextDomain;
      ASSERT_TRUE((*db)->pager().Begin(domain).ok());
      ASSERT_TRUE((*g)->Put(OrderedKeyU64(99), "UNCOMMITTED-G").ok());
      ASSERT_TRUE((*x)->Put(OrderedKeyU64(99), "UNCOMMITTED-X").ok());
      ASSERT_TRUE((*db)->Rollback().ok());
    }
    // Stop BEFORE the db destructor so the clean-close fold is not in
    // the log: the crash window ends at the last commit.
    ops = env.StopOpLog();
  }
  ASSERT_GT(ops.size(), 18u);

  size_t checked = 0;
  for (size_t p = 0; p <= ops.size(); ++p) {
    std::vector<int64_t> cuts = {-1};  // -1: clean crash between ops
    if (p < ops.size() && ops[p].kind == MemEnvOp::Kind::kWrite) {
      int64_t len = static_cast<int64_t>(ops[p].data.size());
      for (int64_t cut :
           {int64_t{1}, len / 4, len / 2, 3 * len / 4, len - 1}) {
        if (cut > 0 && cut < len) cuts.push_back(cut);
      }
    }
    for (int64_t partial : cuts) {
      env.RestoreAll(base);
      ASSERT_TRUE(env.ApplyOps(ops, p, partial).ok());

      auto db = Db::Open("db", opts);
      ASSERT_TRUE(db.ok())
          << "crash at op " << p << " cut " << partial << ": "
          << db.status().ToString();
      auto g = (*db)->OpenTree("g");
      auto x = (*db)->OpenTree("x");
      ASSERT_TRUE(g.ok() && x.ok());
      TwoTreeModel recovered = ReadTrees(*g, *x);

      // The recovered database must be EXACTLY a merged-order boundary
      // state: the last boundary fully contained in the prefix, or the
      // next one (legal when the crash point already has all of txn
      // li+1's bytes durable — e.g. mid-checkpoint, where the log
      // retirement is the only thing missing). A mix of two boundary
      // states — including any state where one tree runs ahead of what
      // the other observed — is a cross-stream consistency bug.
      size_t li = 0;
      for (size_t b = 0; b < boundaries.size(); ++b) {
        if (boundaries[b].ops_done <= p) li = b;
      }
      bool matches_li = recovered == boundaries[li].state;
      bool matches_next = li + 1 < boundaries.size() &&
                          recovered == boundaries[li + 1].state;
      EXPECT_TRUE(matches_li || matches_next)
          << "crash at op " << p << " cut " << partial << ": recovered "
          << recovered.graph.size() << "+" << recovered.text.size()
          << " keys; expected boundary " << li << " ("
          << boundaries[li].state.graph.size() << "+"
          << boundaries[li].state.text.size() << " keys) or " << li + 1;
      EXPECT_EQ(recovered.graph.count(99), 0u)
          << "uncommitted graph key visible after crash at op " << p;
      EXPECT_EQ(recovered.text.count(99), 0u)
          << "uncommitted text key visible after crash at op " << p;
      ++checked;
    }
  }
  EXPECT_GT(checked, ops.size());
}

TEST(CrossStreamCrashInjectionPropertyTest, StrictDurabilityEveryPrefix) {
  // Group window of 1: every commit fsyncs its own stream before the
  // next begins; checkpoints interleave (small threshold), so crash
  // points land mid-fold and mid-stream-reset too.
  RunCrossStreamCrashInjection(1, 24 * kPageSize);
}

TEST(CrossStreamCrashInjectionPropertyTest, GroupedCommitsEveryPrefix) {
  // Group window of 3: commits on both streams ride unsynced windows,
  // so crash points expose cross-stream tails where one stream's
  // window closed and the other's had not — the merge must still
  // produce a contiguous prefix. Large checkpoint threshold keeps both
  // logs long.
  RunCrossStreamCrashInjection(3, 4 << 20);
}

TEST(CrossStreamCrashInjectionPropertyTest,
     CompressedCheckpointsEveryPrefix) {
  // The storage diet on, with the small checkpoint threshold so folds
  // (now writing compressed frames into checkpoint slots) land inside
  // the crash window: every prefix must still recover to a boundary
  // state, with recovery reading back a MIX of compressed and raw
  // slots. Idempotence matters here too — a re-run fold after a crash
  // mid-checkpoint must overwrite slots byte-identically.
  RunCrossStreamCrashInjection(
      1, 24 * kPageSize, storage::compress::CompressionOptions::Mode::kFast);
}

TEST(CrossStreamCrashInjectionPropertyTest,
     CompressedGroupedCommitsEveryPrefix) {
  // Diet + group commit: torn unsynced windows on both streams with
  // compression enabled in both WAL streams' fold path.
  RunCrossStreamCrashInjection(
      3, 4 << 20, storage::compress::CompressionOptions::Mode::kFast);
}

}  // namespace
}  // namespace bp::wal
