// WAL durability subsystem tests: log format round trips, torn-tail
// detection, pager WAL mode (commit, reopen, checkpoint, eviction,
// group commit), mode-switch recovery, and the crash-injection property
// test — crash at EVERY prefix of the recorded write sequence (plus
// torn final writes), reopen, and verify committed data is intact and
// uncommitted data absent, in both durability modes.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "storage/btree.hpp"
#include "storage/db.hpp"
#include "storage/env.hpp"
#include "storage/pager.hpp"
#include "util/serde.hpp"
#include "wal/checkpointer.hpp"
#include "wal/wal_reader.hpp"
#include "wal/wal_writer.hpp"

namespace bp::wal {
namespace {

using storage::Db;
using storage::DbOptions;
using storage::DurabilityMode;
using storage::kPageSize;
using storage::MemEnv;
using storage::MemEnvOp;
using storage::PageId;
using storage::Pager;
using storage::PagerOptions;
using util::OrderedKeyU64;

std::string Page(char fill) { return std::string(kPageSize, fill); }

// ------------------------------------------------------ writer/reader

TEST(WalFormatTest, RoundTripCommittedPages) {
  MemEnv env;
  auto writer = WalWriter::Open(&env, "db.wal");
  ASSERT_TRUE(writer.ok());
  (*writer)->AddPage(1, Page('a'));
  (*writer)->AddPage(2, Page('b'));
  ASSERT_TRUE((*writer)->CommitTxn(1, 3).ok());
  (*writer)->AddPage(1, Page('c'));  // second txn overwrites page 1
  ASSERT_TRUE((*writer)->CommitTxn(2, 3).ok());

  auto contents = WalReader::ReadCommitted(&env, "db.wal");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->commits, 2u);
  EXPECT_EQ(contents->frames, 5u);  // 3 pages + 2 commit frames
  EXPECT_FALSE(contents->torn_tail);
  EXPECT_EQ(contents->last_commit_seq, 2u);
  EXPECT_EQ(contents->last_page_count, 3u);
  ASSERT_EQ(contents->pages.size(), 2u);
  EXPECT_EQ(contents->pages.at(1), Page('c'));  // latest wins
  EXPECT_EQ(contents->pages.at(2), Page('b'));
}

TEST(WalFormatTest, UncommittedTrailingPagesAreIgnored) {
  MemEnv env;
  auto writer = WalWriter::Open(&env, "db.wal");
  ASSERT_TRUE(writer.ok());
  (*writer)->AddPage(1, Page('a'));
  ASSERT_TRUE((*writer)->CommitTxn(1, 2).ok());
  (*writer)->AddPage(2, Page('x'));
  ASSERT_TRUE((*writer)->CommitTxn(2, 3).ok());

  // Cut the file a few bytes into txn 2's commit frame, leaving its page
  // frame intact but the commit torn off — the page must be discarded.
  auto file = env.Open("db.wal");
  auto full = (*file)->Size();
  ASSERT_TRUE(full.ok());
  size_t commit_frame = FrameBytes(kWalCommitPayloadBytes);
  ASSERT_TRUE((*file)->Truncate(*full - commit_frame + 3).ok());

  auto contents = WalReader::ReadCommitted(&env, "db.wal");
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->torn_tail);
  EXPECT_EQ(contents->commits, 1u);
  ASSERT_EQ(contents->pages.size(), 1u);
  EXPECT_EQ(contents->pages.at(1), Page('a'));
}

TEST(WalFormatTest, CorruptByteEndsScan) {
  MemEnv env;
  auto writer = WalWriter::Open(&env, "db.wal");
  ASSERT_TRUE(writer.ok());
  (*writer)->AddPage(1, Page('a'));
  ASSERT_TRUE((*writer)->CommitTxn(1, 2).ok());
  uint64_t first_txn_end = (*writer)->SizeBytes();
  (*writer)->AddPage(2, Page('b'));
  ASSERT_TRUE((*writer)->CommitTxn(2, 3).ok());

  // Flip one byte inside txn 2's page payload.
  auto file = env.Open("db.wal");
  ASSERT_TRUE(
      (*file)->Write(first_txn_end + kWalFrameHeaderBytes + 100, "X").ok());

  auto contents = WalReader::ReadCommitted(&env, "db.wal");
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->torn_tail);
  EXPECT_EQ(contents->commits, 1u);
  EXPECT_EQ(contents->pages.count(2), 0u);
}

TEST(WalFormatTest, TruncateAtEveryByteNeverYieldsPartialTxn) {
  MemEnv env;
  auto writer = WalWriter::Open(&env, "db.wal");
  ASSERT_TRUE(writer.ok());
  (*writer)->AddPage(1, Page('a'));
  ASSERT_TRUE((*writer)->CommitTxn(1, 2).ok());
  uint64_t txn1_end = (*writer)->SizeBytes();
  (*writer)->AddPage(1, Page('b'));
  (*writer)->AddPage(2, Page('c'));
  ASSERT_TRUE((*writer)->CommitTxn(2, 3).ok());
  auto snapshot = env.SnapshotAll();
  uint64_t full = snapshot.at("db.wal").size();

  // Walk a byte-granular sweep of crash points across txn 2 (every 7th
  // byte to keep runtime sane; the offsets straddle all frame edges).
  for (uint64_t cut = txn1_end; cut <= full; cut += (cut + 7 <= full ? 7 : 1)) {
    env.RestoreAll(snapshot);
    auto file = env.Open("db.wal");
    ASSERT_TRUE((*file)->Truncate(cut).ok());
    auto contents = WalReader::ReadCommitted(&env, "db.wal");
    ASSERT_TRUE(contents.ok()) << "cut at " << cut;
    if (cut < full) {
      // Txn 2 must be absent ATOMICALLY: txn 1's state only.
      EXPECT_EQ(contents->commits, 1u) << "cut at " << cut;
      EXPECT_EQ(contents->pages.at(1), Page('a')) << "cut at " << cut;
      EXPECT_EQ(contents->pages.count(2), 0u) << "cut at " << cut;
    } else {
      EXPECT_EQ(contents->commits, 2u);
      EXPECT_EQ(contents->pages.at(1), Page('b'));
      EXPECT_EQ(contents->pages.at(2), Page('c'));
    }
  }
}

// ------------------------------------------------------ checkpointer

TEST(CheckpointerTest, FoldsCommittedPagesIntoDbFile) {
  MemEnv env;
  {
    auto db_file = env.Open("db");
    ASSERT_TRUE((*db_file)->Write(0, Page('0') + Page('1')).ok());
  }
  auto writer = WalWriter::Open(&env, "db.wal");
  ASSERT_TRUE(writer.ok());
  (*writer)->AddPage(1, Page('X'));
  (*writer)->AddPage(2, Page('Y'));  // grows the db
  ASSERT_TRUE((*writer)->CommitTxn(1, 3).ok());

  auto db_file = env.Open("db");
  auto result = Checkpointer::Fold(&env, db_file->get(), "db.wal", true);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ran);
  EXPECT_EQ(result->pages_folded, 2u);
  EXPECT_EQ(result->page_count, 3u);

  std::string out;
  ASSERT_TRUE((*db_file)->Read(0, 3 * kPageSize, &out).ok());
  EXPECT_EQ(out.substr(0, kPageSize), Page('0'));  // untouched
  EXPECT_EQ(out.substr(kPageSize, kPageSize), Page('X'));
  EXPECT_EQ(out.substr(2 * kPageSize, kPageSize), Page('Y'));
}

// --------------------------------------------------- pager, WAL mode

PagerOptions WalPagerOptions(MemEnv* env) {
  PagerOptions opts;
  opts.env = env;
  opts.durability = DurabilityMode::kWal;
  return opts;
}

TEST(PagerWalTest, CommitReopenPersists) {
  MemEnv env;
  {
    auto pager = Pager::Open("db", WalPagerOptions(&env));
    ASSERT_TRUE(pager.ok());
    ASSERT_TRUE((*pager)->Begin().ok());
    auto id = (*pager)->Allocate();
    ASSERT_TRUE(id.ok());
    (*(*pager)->GetMutable(*id)).mutable_data()[0] = 'Z';
    ASSERT_TRUE((*pager)->Commit().ok());
    EXPECT_TRUE(env.Exists("db.wal"));
  }
  // Clean close checkpointed and retired the log.
  EXPECT_FALSE(env.Exists("db.wal"));
  {
    auto pager = Pager::Open("db", WalPagerOptions(&env));
    ASSERT_TRUE(pager.ok());
    EXPECT_EQ((*pager)->page_count(), 2u);
    EXPECT_EQ((*(*pager)->Get(1)).data()[0], 'Z');
  }
}

TEST(PagerWalTest, CrashBeforeCheckpointRecoversFromLog) {
  MemEnv env;
  std::map<std::string, std::string> crashed;
  {
    auto pager = Pager::Open("db", WalPagerOptions(&env));
    ASSERT_TRUE(pager.ok());
    ASSERT_TRUE((*pager)->Begin().ok());
    auto id = (*pager)->Allocate();
    ASSERT_TRUE(id.ok());
    (*(*pager)->GetMutable(*id)).mutable_data()[0] = 'A';
    ASSERT_TRUE((*pager)->Commit().ok());
    // Power loss NOW: the commit lives only in the log.
    crashed = env.SnapshotAll();
  }
  env.RestoreAll(crashed);
  ASSERT_TRUE(env.Exists("db.wal"));
  auto pager = Pager::Open("db", WalPagerOptions(&env));
  ASSERT_TRUE(pager.ok());
  EXPECT_EQ((*pager)->page_count(), 2u);
  EXPECT_EQ((*(*pager)->Get(1)).data()[0], 'A');
  // The crashed log was folded and retired; what exists now is the
  // fresh, empty live log of the reopened pager.
  auto live = WalReader::ReadCommitted(&env, "db.wal");
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(live->commits, 0u);
}

TEST(PagerWalTest, UncommittedTxnIsInvisibleAfterCrash) {
  MemEnv env;
  std::map<std::string, std::string> crashed;
  {
    auto pager = Pager::Open("db", WalPagerOptions(&env));
    ASSERT_TRUE(pager.ok());
    ASSERT_TRUE((*pager)->Begin().ok());
    auto id = (*pager)->Allocate();
    ASSERT_TRUE(id.ok());
    (*(*pager)->GetMutable(*id)).mutable_data()[0] = 'A';
    ASSERT_TRUE((*pager)->Commit().ok());
    // Open a second txn, mutate, crash before Commit.
    ASSERT_TRUE((*pager)->Begin().ok());
    (*(*pager)->GetMutable(*id)).mutable_data()[0] = 'B';
    crashed = env.SnapshotAll();
    ASSERT_TRUE((*pager)->Rollback().ok());
  }
  env.RestoreAll(crashed);
  auto pager = Pager::Open("db", WalPagerOptions(&env));
  ASSERT_TRUE(pager.ok());
  EXPECT_EQ((*(*pager)->Get(1)).data()[0], 'A');
}

TEST(PagerWalTest, ThresholdCheckpointFoldsAndTruncatesLog) {
  MemEnv env;
  PagerOptions opts = WalPagerOptions(&env);
  opts.wal_checkpoint_bytes = 8 * kPageSize;  // tiny threshold
  auto pager = Pager::Open("db", opts);
  ASSERT_TRUE(pager.ok());
  std::vector<PageId> ids;
  for (int t = 0; t < 8; ++t) {
    ASSERT_TRUE((*pager)->Begin().ok());
    auto id = (*pager)->Allocate();
    ASSERT_TRUE(id.ok());
    (*(*pager)->GetMutable(*id)).mutable_data()[0] =
        static_cast<char>('a' + t);
    ids.push_back(*id);
    ASSERT_TRUE((*pager)->Commit().ok());
  }
  EXPECT_GT((*pager)->stats().checkpoints, 0u);
  // All data readable (some from main file, some possibly from log).
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ((*(*pager)->Get(ids[i])).data()[0],
              static_cast<char>('a' + i));
  }
}

TEST(PagerWalTest, EvictedPageIsReadBackFromLog) {
  MemEnv env;
  PagerOptions opts = WalPagerOptions(&env);
  opts.cache_pages = 4;  // force eviction
  opts.wal_checkpoint_bytes = 64 << 20;  // never checkpoint during test
  auto pager = Pager::Open("db", opts);
  ASSERT_TRUE(pager.ok());
  std::vector<PageId> ids;
  ASSERT_TRUE((*pager)->Begin().ok());
  for (int i = 0; i < 32; ++i) {
    auto id = (*pager)->Allocate();
    ASSERT_TRUE(id.ok());
    (*(*pager)->GetMutable(*id)).mutable_data()[0] =
        static_cast<char>('a' + (i % 26));
    ids.push_back(*id);
  }
  ASSERT_TRUE((*pager)->Commit().ok());
  EXPECT_GT((*pager)->stats().evictions, 0u);
  // The main db file holds none of these pages (no checkpoint ran), so
  // evicted ones must come back from the WAL.
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ((*(*pager)->Get(ids[i])).data()[0],
              static_cast<char>('a' + (i % 26)));
  }
}

TEST(PagerWalTest, GroupCommitDefersFsyncAcrossWindow) {
  MemEnv env;
  PagerOptions opts = WalPagerOptions(&env);
  opts.wal_group_commit = 8;
  auto pager = Pager::Open("db", opts);
  ASSERT_TRUE(pager.ok());
  uint64_t baseline = (*pager)->stats().fsyncs;
  for (int t = 0; t < 7; ++t) {
    ASSERT_TRUE((*pager)->Begin().ok());
    auto id = (*pager)->Allocate();
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE((*pager)->Commit().ok());
  }
  // 7 commits, window of 8: no fsync yet.
  EXPECT_EQ((*pager)->stats().fsyncs, baseline);
  ASSERT_TRUE((*pager)->Begin().ok());
  auto id = (*pager)->Allocate();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE((*pager)->Commit().ok());
  // The 8th commit filled the window: exactly one fsync for all eight,
  // counted as one group commit.
  EXPECT_EQ((*pager)->stats().fsyncs, baseline + 1);
  EXPECT_EQ((*pager)->stats().group_commits, 1u);
  EXPECT_EQ((*pager)->unsynced_commits(), 0u);
}

TEST(PagerWalTest, FlushPendingClosesAPartialGroupEarly) {
  MemEnv env;
  PagerOptions opts = WalPagerOptions(&env);
  opts.wal_group_commit = 8;  // ceiling, not cadence
  auto pager = Pager::Open("db", opts);
  ASSERT_TRUE(pager.ok());
  uint64_t baseline = (*pager)->stats().fsyncs;
  for (int t = 0; t < 3; ++t) {
    ASSERT_TRUE((*pager)->Begin().ok());
    auto id = (*pager)->Allocate();
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE((*pager)->Commit().ok());
  }
  // 3 commits in an 8-wide window: nothing synced yet.
  EXPECT_EQ((*pager)->stats().fsyncs, baseline);
  EXPECT_EQ((*pager)->unsynced_commits(), 3u);
  // The idle hook closes the partial window now (one fsync, one group).
  auto flushed = (*pager)->FlushPending();
  ASSERT_TRUE(flushed.ok());
  EXPECT_TRUE(*flushed);
  EXPECT_EQ((*pager)->stats().fsyncs, baseline + 1);
  EXPECT_EQ((*pager)->stats().group_commits, 1u);
  EXPECT_EQ((*pager)->unsynced_commits(), 0u);
  // Nothing pending: the hook reports it did not sync.
  flushed = (*pager)->FlushPending();
  ASSERT_TRUE(flushed.ok());
  EXPECT_FALSE(*flushed);
  EXPECT_EQ((*pager)->stats().fsyncs, baseline + 1);
}

TEST(PagerWalTest, GroupCommitCrashLosesOnlyUnsyncedSuffixAtomically) {
  MemEnv env;
  PagerOptions opts = WalPagerOptions(&env);
  opts.wal_group_commit = 4;
  std::map<std::string, std::string> crashed;
  {
    auto pager = Pager::Open("db", opts);
    ASSERT_TRUE(pager.ok());
    for (int t = 0; t < 6; ++t) {  // window flushes at 4; 5..6 unsynced
      ASSERT_TRUE((*pager)->Begin().ok());
      auto id = (*pager)->Allocate();
      ASSERT_TRUE(id.ok());
      (*(*pager)->GetMutable(*id)).mutable_data()[0] =
          static_cast<char>('a' + t);
      ASSERT_TRUE((*pager)->Commit().ok());
    }
    crashed = env.SnapshotAll();
  }
  // MemEnv persists unsynced writes, so the snapshot holds all six; the
  // durability CONTRACT is only that a consistent committed prefix
  // survives. Verify the recovered db is exactly a prefix state.
  env.RestoreAll(crashed);
  auto pager = Pager::Open("db", opts);
  ASSERT_TRUE(pager.ok());
  uint32_t recovered_pages = (*pager)->page_count();
  ASSERT_GE(recovered_pages, 1u);
  ASSERT_LE(recovered_pages, 7u);
  for (PageId id = 1; id < recovered_pages; ++id) {
    EXPECT_EQ((*(*pager)->Get(id)).data()[0],
              static_cast<char>('a' + (id - 1)));
  }
}

// ------------------------------------------------- mode-switch safety

TEST(ModeSwitchTest, JournalDbOpensInWalModeAndBack) {
  MemEnv env;
  PagerOptions jopts;
  jopts.env = &env;
  {
    auto pager = Pager::Open("db", jopts);
    ASSERT_TRUE(pager.ok());
    ASSERT_TRUE((*pager)->Begin().ok());
    auto id = (*pager)->Allocate();
    ASSERT_TRUE(id.ok());
    (*(*pager)->GetMutable(*id)).mutable_data()[0] = 'J';
    ASSERT_TRUE((*pager)->Commit().ok());
  }
  {
    auto pager = Pager::Open("db", WalPagerOptions(&env));
    ASSERT_TRUE(pager.ok());
    EXPECT_EQ((*(*pager)->Get(1)).data()[0], 'J');
    ASSERT_TRUE((*pager)->Begin().ok());
    (*(*pager)->GetMutable(1)).mutable_data()[0] = 'W';
    ASSERT_TRUE((*pager)->Commit().ok());
  }
  {
    auto pager = Pager::Open("db", jopts);
    ASSERT_TRUE(pager.ok());
    EXPECT_EQ((*(*pager)->Get(1)).data()[0], 'W');
  }
}

TEST(ModeSwitchTest, HotJournalRolledBackWhenOpeningInWalMode) {
  MemEnv env;
  PagerOptions jopts;
  jopts.env = &env;
  auto pager = Pager::Open("db", jopts);
  ASSERT_TRUE(pager.ok());
  ASSERT_TRUE((*pager)->Begin().ok());
  auto id = (*pager)->Allocate();
  ASSERT_TRUE(id.ok());
  (*(*pager)->GetMutable(*id)).mutable_data()[0] = 'A';
  ASSERT_TRUE((*pager)->Commit().ok());

  ASSERT_TRUE((*pager)->Begin().ok());
  (*(*pager)->GetMutable(*id)).mutable_data()[0] = 'B';
  (*pager)->set_crash_after_journal_for_testing(true);
  EXPECT_EQ((*pager)->Commit().code(), util::StatusCode::kAborted);
  auto crashed = env.SnapshotAll();
  ASSERT_TRUE((*pager)->Rollback().ok());
  pager->reset();

  env.RestoreAll(crashed);
  ASSERT_TRUE(env.Exists("db.journal"));
  auto wal_pager = Pager::Open("db", WalPagerOptions(&env));
  ASSERT_TRUE(wal_pager.ok());
  EXPECT_EQ((*(*wal_pager)->Get(1)).data()[0], 'A');
  EXPECT_FALSE(env.Exists("db.journal"));
}

TEST(ModeSwitchTest, CrashedWalDbOpensInJournalMode) {
  MemEnv env;
  std::map<std::string, std::string> crashed;
  {
    auto pager = Pager::Open("db", WalPagerOptions(&env));
    ASSERT_TRUE(pager.ok());
    ASSERT_TRUE((*pager)->Begin().ok());
    auto id = (*pager)->Allocate();
    ASSERT_TRUE(id.ok());
    (*(*pager)->GetMutable(*id)).mutable_data()[0] = 'W';
    ASSERT_TRUE((*pager)->Commit().ok());
    crashed = env.SnapshotAll();  // commit only in the log
  }
  env.RestoreAll(crashed);
  PagerOptions jopts;
  jopts.env = &env;
  auto pager = Pager::Open("db", jopts);
  ASSERT_TRUE(pager.ok());
  EXPECT_EQ((*(*pager)->Get(1)).data()[0], 'W');
  EXPECT_FALSE(env.Exists("db.wal"));
}

// --------------------------------- crash-injection property test
//
// Scripted workload of small transactions against a Db tree, with the
// MemEnv op log recording every byte that hits the "disk". Then, for
// every prefix of the op sequence — and for torn variants of the next
// write — restore the initial snapshot, replay the prefix, REOPEN, and
// require the recovered database to be exactly one of the two states a
// crash at that boundary legally exposes: the last commit fully applied
// or not applied at all.

using Model = std::map<uint64_t, std::string>;

Model ReadTree(storage::BTree* tree) {
  Model out;
  EXPECT_TRUE(tree->ForEach([&](std::string_view key, std::string_view v) {
                    out[util::DecodeOrderedKeyU64(key)] = std::string(v);
                    return true;
                  })
                  .ok());
  return out;
}

struct TxnBoundary {
  size_t ops_done = 0;  // op-log length right after this txn's Commit
  Model state;          // expected tree contents at that point
};

void RunCrashInjection(DurabilityMode mode) {
  MemEnv env;
  DbOptions opts;
  opts.env = &env;
  opts.durability = mode;
  opts.wal_group_commit = 1;  // strict durability for the property
  opts.wal_checkpoint_bytes = 24 * kPageSize;  // exercise checkpoints too

  // Set up the database (catalog + tree) BEFORE logging starts, so every
  // recorded crash point has a well-formed database underneath it.
  {
    auto db = Db::Open("db", opts);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateTree("t").ok());
  }
  auto base = env.SnapshotAll();

  // Scripted workload: 20 committed txns with growing/overwritten keys
  // plus interleaved rollbacks (whose effects must NEVER surface).
  std::vector<TxnBoundary> boundaries;
  std::vector<MemEnvOp> ops;
  {
    env.StartOpLog();
    auto db = Db::Open("db", opts);
    ASSERT_TRUE(db.ok());
    auto tree = (*db)->OpenTree("t");
    ASSERT_TRUE(tree.ok());
    Model model;
    boundaries.push_back({env.OpLogSize(), model});  // empty tree
    for (int t = 0; t < 20; ++t) {
      ASSERT_TRUE((*db)->Begin().ok());
      for (int i = 0; i < 3; ++i) {
        uint64_t key = (t * 7 + i * 3) % 24;
        std::string value = "t" + std::to_string(t) + "v" +
                            std::string(40 + (t % 5) * 30, 'x');
        ASSERT_TRUE((*tree)->Put(OrderedKeyU64(key), value).ok());
        model[key] = value;
      }
      ASSERT_TRUE((*db)->Commit().ok());
      boundaries.push_back({env.OpLogSize(), model});

      // An uncommitted mutation between txns: must never surface.
      ASSERT_TRUE((*db)->Begin().ok());
      ASSERT_TRUE(
          (*tree)->Put(OrderedKeyU64(99), "UNCOMMITTED" + std::to_string(t))
              .ok());
      ASSERT_TRUE((*db)->Rollback().ok());
    }
    // Stop BEFORE the db destructor so the clean-close fold is not in
    // the log: the crash window under test ends at the last commit.
    ops = env.StopOpLog();
  }

  ASSERT_GT(ops.size(), 20u);

  // For every prefix of the op sequence — and several torn cuts through
  // the next write (WAL commits are one large append, so intra-write
  // byte boundaries are where torn-frame detection earns its keep) —
  // crash, reopen, verify.
  size_t checked = 0;
  for (size_t p = 0; p <= ops.size(); ++p) {
    std::vector<int64_t> cuts = {-1};  // -1: clean crash between ops
    if (p < ops.size() && ops[p].kind == MemEnvOp::Kind::kWrite) {
      int64_t len = static_cast<int64_t>(ops[p].data.size());
      for (int64_t cut : {int64_t{1}, len / 4, len / 2, 3 * len / 4,
                          len - 1}) {
        if (cut > 0 && cut < len) cuts.push_back(cut);
      }
    }
    for (int64_t partial : cuts) {
      env.RestoreAll(base);
      ASSERT_TRUE(env.ApplyOps(ops, p, partial).ok());

      auto db = Db::Open("db", opts);
      ASSERT_TRUE(db.ok()) << "mode " << static_cast<int>(mode)
                           << " crash at op " << p << " cut " << partial
                           << ": " << db.status().ToString();
      auto tree = (*db)->OpenTree("t");
      ASSERT_TRUE(tree.ok());
      Model recovered = ReadTree(*tree);

      // Last boundary fully contained in the prefix: the recovered
      // database must be EXACTLY that state, or exactly the next one
      // (legal when the crash point already has the whole of txn li+1
      // durable — e.g. mid-checkpoint, or with only the journal's
      // retirement missing). Anything else — a torn mix of two txns —
      // is a durability bug.
      size_t li = 0;
      for (size_t b = 0; b < boundaries.size(); ++b) {
        if (boundaries[b].ops_done <= p) li = b;
      }
      bool matches_li = recovered == boundaries[li].state;
      bool matches_next = li + 1 < boundaries.size() &&
                          recovered == boundaries[li + 1].state;
      EXPECT_TRUE(matches_li || matches_next)
          << "mode " << static_cast<int>(mode) << " crash at op " << p
          << " cut " << partial << ": recovered " << recovered.size()
          << " keys; expected state " << li << " ("
          << boundaries[li].state.size() << " keys) or state " << li + 1;
      // Rolled-back mutations must never surface.
      EXPECT_EQ(recovered.count(99), 0u)
          << "uncommitted key visible after crash at op " << p;
      ++checked;
    }
  }
  // The sweep must actually have covered a meaningful number of states.
  EXPECT_GT(checked, ops.size());
}

TEST(CrashInjectionPropertyTest, JournalModeEveryPrefix) {
  RunCrashInjection(DurabilityMode::kRollbackJournal);
}

TEST(CrashInjectionPropertyTest, WalModeEveryPrefix) {
  RunCrashInjection(DurabilityMode::kWal);
}

}  // namespace
}  // namespace bp::wal
