// Tests for bp::graph: attribute maps, the persistent property graph,
// traversals, HITS/PageRank, decay expansion, cycle checks, and the
// interval index (including a brute-force property sweep).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/algo.hpp"
#include "graph/attr.hpp"
#include "graph/interval_index.hpp"
#include "graph/store.hpp"
#include "storage/env.hpp"
#include "util/rng.hpp"

namespace bp::graph {
namespace {

using storage::DbOptions;
using storage::MemEnv;
using util::Rng;
using util::TimeSpan;

// ------------------------------------------------------------- attrs

TEST(AttrMapTest, SetGetAllTypes) {
  AttrMap m;
  m.SetInt("visits", 42);
  m.SetDouble("score", 2.5);
  m.SetBool("typed", true);
  m.SetString("url", "http://example.com");
  EXPECT_EQ(m.GetInt("visits"), 42);
  EXPECT_EQ(m.GetDouble("score"), 2.5);
  EXPECT_EQ(m.GetBool("typed"), true);
  EXPECT_EQ(m.GetString("url"), "http://example.com");
  EXPECT_EQ(m.GetInt("missing"), std::nullopt);
  EXPECT_EQ(m.IntOr("missing", 7), 7);
  EXPECT_EQ(m.StringOr("missing", "x"), "x");
}

TEST(AttrMapTest, IntReadableAsDouble) {
  AttrMap m;
  m.SetInt("n", 3);
  EXPECT_EQ(m.GetDouble("n"), 3.0);
  EXPECT_EQ(m.GetInt("n"), 3);
}

TEST(AttrMapTest, TypeMismatchIsNullopt) {
  AttrMap m;
  m.SetString("s", "text");
  EXPECT_EQ(m.GetInt("s"), std::nullopt);
  EXPECT_EQ(m.GetBool("s"), std::nullopt);
}

TEST(AttrMapTest, OverwriteAndRemove) {
  AttrMap m;
  m.SetInt("k", 1);
  m.SetInt("k", 2);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.GetInt("k"), 2);
  EXPECT_TRUE(m.Remove("k"));
  EXPECT_FALSE(m.Remove("k"));
  EXPECT_TRUE(m.empty());
}

TEST(AttrMapTest, EncodeDecodeRoundTrip) {
  AttrMap m;
  m.SetInt("a", -123456789);
  m.SetDouble("b", 0.125);
  m.SetBool("c", false);
  m.SetString("d", std::string("\x01\x02nul\x00!", 7));
  util::Writer w;
  m.Encode(w);
  util::Reader r(w.data());
  auto decoded = AttrMap::Decode(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(r.Finish().ok());
  EXPECT_EQ(*decoded, m);
}

TEST(AttrMapTest, CanonicalEncodingIndependentOfInsertionOrder) {
  AttrMap a;
  a.SetInt("x", 1);
  a.SetInt("y", 2);
  AttrMap b;
  b.SetInt("y", 2);
  b.SetInt("x", 1);
  util::Writer wa, wb;
  a.Encode(wa);
  b.Encode(wb);
  EXPECT_EQ(wa.data(), wb.data());
}

// ------------------------------------------------------------- store

class GraphStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DbOptions opts;
    opts.env = &env_;
    auto db = storage::Db::Open("g.db", opts);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    auto store = GraphStore::Open(*db_, "graph");
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
  }

  NodeId MustAddNode(uint32_t kind, AttrMap attrs = {}) {
    auto id = store_->AddNode(kind, std::move(attrs));
    EXPECT_TRUE(id.ok());
    return *id;
  }
  EdgeId MustAddEdge(NodeId src, NodeId dst, uint32_t kind = 0,
                     AttrMap attrs = {}) {
    auto id = store_->AddEdge(src, dst, kind, std::move(attrs));
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    return *id;
  }

  MemEnv env_;
  std::unique_ptr<storage::Db> db_;
  std::unique_ptr<GraphStore> store_;
};

TEST_F(GraphStoreTest, AddGetNode) {
  AttrMap attrs;
  attrs.SetString("url", "http://a");
  NodeId id = MustAddNode(5, attrs);
  auto node = store_->GetNode(id);
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(node->kind, 5u);
  EXPECT_EQ(node->attrs.GetString("url"), "http://a");
  EXPECT_TRUE(store_->GetNode(999).status().IsNotFound());
}

TEST_F(GraphStoreTest, PutNodeUpdatesAttrs) {
  NodeId id = MustAddNode(1);
  auto node = store_->GetNode(id);
  ASSERT_TRUE(node.ok());
  node->attrs.SetInt("visits", 3);
  ASSERT_TRUE(store_->PutNode(*node).ok());
  EXPECT_EQ(store_->GetNode(id)->attrs.GetInt("visits"), 3);

  Node ghost{12345, 0, {}};
  EXPECT_TRUE(store_->PutNode(ghost).IsNotFound());
}

TEST_F(GraphStoreTest, EdgeEndpointsMustExist) {
  NodeId a = MustAddNode(1);
  EXPECT_EQ(store_->AddEdge(a, 999, 0).status().code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_EQ(store_->AddEdge(999, a, 0).status().code(),
            util::StatusCode::kFailedPrecondition);
}

TEST_F(GraphStoreTest, AdjacencyBothDirections) {
  NodeId a = MustAddNode(1);
  NodeId b = MustAddNode(1);
  NodeId c = MustAddNode(1);
  MustAddEdge(a, b, 10);
  MustAddEdge(a, c, 20);
  MustAddEdge(b, c, 30);

  std::multiset<NodeId> out_of_a;
  ASSERT_TRUE(store_
                  ->ForEachEdge(a, Direction::kOut,
                                [&](const Edge& e) {
                                  EXPECT_EQ(e.src, a);
                                  out_of_a.insert(e.dst);
                                  return true;
                                })
                  .ok());
  EXPECT_EQ(out_of_a, (std::multiset<NodeId>{b, c}));

  std::multiset<NodeId> into_c;
  ASSERT_TRUE(store_
                  ->ForEachEdge(c, Direction::kIn,
                                [&](const Edge& e) {
                                  EXPECT_EQ(e.dst, c);
                                  into_c.insert(e.src);
                                  return true;
                                })
                  .ok());
  EXPECT_EQ(into_c, (std::multiset<NodeId>{a, b}));

  EXPECT_EQ(*store_->Degree(a, Direction::kOut), 2u);
  EXPECT_EQ(*store_->Degree(a, Direction::kIn), 0u);
  EXPECT_EQ(*store_->Degree(c, Direction::kIn), 2u);
}

TEST_F(GraphStoreTest, ParallelEdgesAllowed) {
  NodeId a = MustAddNode(1);
  NodeId b = MustAddNode(1);
  MustAddEdge(a, b, 1);
  MustAddEdge(a, b, 2);
  EXPECT_EQ(*store_->Degree(a, Direction::kOut), 2u);
}

TEST_F(GraphStoreTest, DeleteEdgeCleansAdjacency) {
  NodeId a = MustAddNode(1);
  NodeId b = MustAddNode(1);
  EdgeId e = MustAddEdge(a, b, 1);
  ASSERT_TRUE(store_->DeleteEdge(e).ok());
  EXPECT_EQ(*store_->Degree(a, Direction::kOut), 0u);
  EXPECT_EQ(*store_->Degree(b, Direction::kIn), 0u);
  EXPECT_TRUE(store_->GetEdge(e).status().IsNotFound());
  EXPECT_EQ(*store_->EdgeCount(), 0u);
}

TEST_F(GraphStoreTest, CountsAndFullScans) {
  NodeId a = MustAddNode(1);
  NodeId b = MustAddNode(2);
  MustAddEdge(a, b, 7);
  EXPECT_EQ(*store_->NodeCount(), 2u);
  EXPECT_EQ(*store_->EdgeCount(), 1u);
  int nodes_seen = 0;
  ASSERT_TRUE(store_
                  ->ForEachNode([&](const Node&) {
                    ++nodes_seen;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(nodes_seen, 2);
  int edges_seen = 0;
  ASSERT_TRUE(store_
                  ->ForEachEdge([&](const Edge& e) {
                    EXPECT_EQ(e.kind, 7u);
                    ++edges_seen;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(edges_seen, 1);
}

TEST_F(GraphStoreTest, PersistsAcrossReopen) {
  NodeId a = MustAddNode(1);
  NodeId b = MustAddNode(2);
  MustAddEdge(a, b, 3);
  store_.reset();
  db_.reset();

  DbOptions opts;
  opts.env = &env_;
  auto db = storage::Db::Open("g.db", opts);
  ASSERT_TRUE(db.ok());
  auto store = GraphStore::Open(**db, "graph");
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(*(*store)->NodeCount(), 2u);
  EXPECT_EQ(*(*store)->Degree(a, Direction::kOut), 1u);
}

TEST_F(GraphStoreTest, TwoGraphsShareOneDb) {
  auto other = GraphStore::Open(*db_, "other");
  ASSERT_TRUE(other.ok());
  MustAddNode(1);
  EXPECT_EQ(*(*other)->NodeCount(), 0u);
  EXPECT_EQ(*store_->NodeCount(), 1u);
}

// -------------------------------------------------------- traversals

class AlgoTest : public GraphStoreTest {
 protected:
  // Builds the lineage fixture used by several tests:
  //
  //   search -> page1 -> page2 -> download
  //                  \-> side
  //   orphan
  void BuildLineage() {
    search_ = MustAddNode(1);
    page1_ = MustAddNode(2);
    page2_ = MustAddNode(2);
    side_ = MustAddNode(2);
    download_ = MustAddNode(3);
    orphan_ = MustAddNode(2);
    MustAddEdge(search_, page1_);
    MustAddEdge(page1_, page2_);
    MustAddEdge(page1_, side_);
    MustAddEdge(page2_, download_);
  }

  NodeId search_ = 0, page1_ = 0, page2_ = 0, side_ = 0, download_ = 0,
         orphan_ = 0;
};

TEST_F(AlgoTest, BfsDescendantsInOrder) {
  BuildLineage();
  auto result = Bfs(*store_, search_, {});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->visits.size(), 5u);
  EXPECT_EQ(result->visits[0].node, search_);
  EXPECT_EQ(result->visits[0].depth, 0u);
  EXPECT_EQ(result->visits[1].node, page1_);
  // Depths must be nondecreasing in BFS order.
  for (size_t i = 1; i < result->visits.size(); ++i) {
    EXPECT_GE(result->visits[i].depth, result->visits[i - 1].depth);
  }
  EXPECT_FALSE(result->truncated);
}

TEST_F(AlgoTest, BfsAncestors) {
  BuildLineage();
  TraversalOptions options;
  options.direction = Direction::kIn;
  auto result = Bfs(*store_, download_, options);
  ASSERT_TRUE(result.ok());
  std::vector<NodeId> nodes;
  for (const auto& v : result->visits) nodes.push_back(v.node);
  EXPECT_EQ(nodes, (std::vector<NodeId>{download_, page2_, page1_, search_}));
}

TEST_F(AlgoTest, BfsDepthLimit) {
  BuildLineage();
  TraversalOptions options;
  options.max_depth = 1;
  auto result = Bfs(*store_, search_, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->visits.size(), 2u);  // search + page1
}

TEST_F(AlgoTest, BfsNodeCapTruncates) {
  BuildLineage();
  TraversalOptions options;
  options.max_nodes = 2;
  auto result = Bfs(*store_, search_, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->visits.size(), 2u);
  EXPECT_TRUE(result->truncated);
}

TEST_F(AlgoTest, BfsBudgetTruncates) {
  BuildLineage();
  util::QueryBudget budget = util::QueryBudget::WithNodeCap(2);
  TraversalOptions options;
  options.budget = &budget;
  auto result = Bfs(*store_, search_, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->truncated);
  EXPECT_LE(result->visits.size(), 3u);
}

TEST_F(AlgoTest, BfsMissingStartIsNotFound) {
  EXPECT_TRUE(Bfs(*store_, 424242, {}).status().IsNotFound());
}

TEST_F(AlgoTest, EdgeFilterPrunes) {
  NodeId a = MustAddNode(1);
  NodeId b = MustAddNode(1);
  NodeId c = MustAddNode(1);
  MustAddEdge(a, b, /*kind=*/1);
  MustAddEdge(a, c, /*kind=*/2);
  TraversalOptions options;
  options.edge_filter = [](const EdgeRef& e) { return e.kind() == 1; };
  auto result = Bfs(*store_, a, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->visits.size(), 2u);
  EXPECT_EQ(result->visits[1].node, b);
}

TEST_F(AlgoTest, PathToReconstructsLineage) {
  BuildLineage();
  TraversalOptions options;
  options.direction = Direction::kIn;
  auto result = Bfs(*store_, download_, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->PathTo(search_),
            (std::vector<NodeId>{download_, page2_, page1_, search_}));
  EXPECT_TRUE(result->PathTo(orphan_).empty());
}

TEST_F(AlgoTest, FindFirstRespectsBfsOrderAndExcludesStart) {
  BuildLineage();
  // Mark search_ and page1_ as "recognizable".
  for (NodeId id : {search_, page1_}) {
    auto node = store_->GetNode(id);
    ASSERT_TRUE(node.ok());
    node->attrs.SetBool("known", true);
    ASSERT_TRUE(store_->PutNode(*node).ok());
  }
  TraversalOptions options;
  options.direction = Direction::kIn;
  auto hit = FindFirst(*store_, download_, options, [](const Node& n) {
    return n.attrs.GetBool("known").value_or(false);
  });
  ASSERT_TRUE(hit.ok());
  ASSERT_TRUE(hit->has_value());
  EXPECT_EQ((*hit)->node, page1_);  // nearest recognizable ancestor
  EXPECT_EQ((*hit)->depth, 2u);
}

TEST_F(AlgoTest, FindFirstNoMatch) {
  BuildLineage();
  auto hit = FindFirst(*store_, download_,
                       [] {
                         TraversalOptions o;
                         o.direction = Direction::kIn;
                         return o;
                       }(),
                       [](const Node&) { return false; });
  ASSERT_TRUE(hit.ok());
  EXPECT_FALSE(hit->has_value());
}

TEST_F(AlgoTest, ShortestPath) {
  BuildLineage();
  auto path = ShortestPath(*store_, search_, download_, {});
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(*path,
            (std::vector<NodeId>{search_, page1_, page2_, download_}));
  auto none = ShortestPath(*store_, download_, search_, {});  // wrong way
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

// ------------------------------------------------------- neighborhoods

TEST_F(AlgoTest, BuildNeighborhoodSpansBothDirections) {
  BuildLineage();
  auto graph = BuildNeighborhood(*store_, {page2_}, 1, 100);
  ASSERT_TRUE(graph.ok());
  // page2's 1-hop neighborhood: itself, page1 (in), download (out).
  EXPECT_EQ(graph->size(), 3u);
  EXPECT_TRUE(graph->Contains(page1_));
  EXPECT_TRUE(graph->Contains(download_));
  EXPECT_FALSE(graph->Contains(orphan_));
  // Directed adjacency recorded: page1 -> page2.
  uint32_t p1 = graph->index_of.at(page1_);
  uint32_t p2 = graph->index_of.at(page2_);
  EXPECT_EQ(graph->out[p1], (std::vector<uint32_t>{p2}));
}

TEST_F(AlgoTest, BuildNeighborhoodMaxNodesTruncates) {
  BuildLineage();
  auto graph = BuildNeighborhood(*store_, {search_}, 10, 2);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->size(), 2u);
  EXPECT_TRUE(graph->truncated);
}

TEST_F(AlgoTest, ExpandWithDecayWeightsByDistance) {
  BuildLineage();
  auto expansion = ExpandWithDecay(*store_, {{search_, 1.0}}, 2, 0.5);
  ASSERT_TRUE(expansion.ok());
  const auto& weights = expansion->weights;
  EXPECT_DOUBLE_EQ(weights.at(search_), 1.0);
  EXPECT_DOUBLE_EQ(weights.at(page1_), 0.5);
  EXPECT_DOUBLE_EQ(weights.at(page2_), 0.25);
  EXPECT_DOUBLE_EQ(weights.at(side_), 0.25);
  EXPECT_EQ(weights.count(download_), 0u);  // 3 hops > max_depth 2
  EXPECT_EQ(weights.count(orphan_), 0u);
  // The expansion reports the work it did.
  EXPECT_GT(expansion->stats.nodes_visited, 0u);
  EXPECT_GT(expansion->stats.edges_expanded, 0u);
  EXPECT_GT(expansion->stats.rows_scanned, 0u);
}

TEST_F(AlgoTest, ExpandWithDecayAccumulatesMultipleSeeds) {
  BuildLineage();
  auto expansion =
      ExpandWithDecay(*store_, {{page2_, 1.0}, {side_, 1.0}}, 1, 0.5);
  ASSERT_TRUE(expansion.ok());
  // page1 is one hop from both seeds: 0.5 + 0.5.
  EXPECT_DOUBLE_EQ(expansion->weights.at(page1_), 1.0);
}

// ---------------------------------------------------------- iterative

TEST_F(AlgoTest, HitsFindsHubAndAuthority) {
  // Classic bipartite: hubs h1,h2 each link to authorities a1,a2.
  NodeId h1 = MustAddNode(1);
  NodeId h2 = MustAddNode(1);
  NodeId a1 = MustAddNode(1);
  NodeId a2 = MustAddNode(1);
  MustAddEdge(h1, a1);
  MustAddEdge(h1, a2);
  MustAddEdge(h2, a1);
  auto graph = BuildNeighborhood(*store_, {h1}, 3, 100);
  ASSERT_TRUE(graph.ok());
  HitsScores scores = Hits(*graph);
  uint32_t ih1 = graph->index_of.at(h1);
  uint32_t ih2 = graph->index_of.at(h2);
  uint32_t ia1 = graph->index_of.at(a1);
  uint32_t ia2 = graph->index_of.at(a2);
  // h1 links to more authorities than h2.
  EXPECT_GT(scores.hub[ih1], scores.hub[ih2]);
  // a1 is linked from more hubs than a2.
  EXPECT_GT(scores.authority[ia1], scores.authority[ia2]);
  // Hubs have negligible authority here.
  EXPECT_GT(scores.authority[ia2], scores.authority[ih1]);
}

TEST_F(AlgoTest, PageRankConcentratesNearSeeds) {
  // chain a -> b -> c, seed at a.
  NodeId a = MustAddNode(1);
  NodeId b = MustAddNode(1);
  NodeId c = MustAddNode(1);
  MustAddEdge(a, b);
  MustAddEdge(b, c);
  auto graph = BuildNeighborhood(*store_, {a}, 5, 100);
  ASSERT_TRUE(graph.ok());
  auto rank = PersonalizedPageRank(*graph, {a});
  uint32_t ia = graph->index_of.at(a);
  uint32_t ib = graph->index_of.at(b);
  uint32_t ic = graph->index_of.at(c);
  EXPECT_GT(rank[ia], rank[ib]);
  EXPECT_GT(rank[ib], rank[ic]);
  // Probabilities sum to ~1.
  double total = 0;
  for (double r : rank) total += r;
  EXPECT_NEAR(total, 1.0, 1e-6);
}

// -------------------------------------------------------------- cycles

TEST_F(AlgoTest, WouldCreateCycleDetectsBackEdge) {
  BuildLineage();
  auto yes = WouldCreateCycle(*store_, page2_, search_);
  // Adding page2 -> search is fine (search cannot reach... wait: edge
  // src=page2, dst=search; cycle iff page2 reachable FROM search — it is.
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(*yes);
  auto no = WouldCreateCycle(*store_, orphan_, search_);
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(*no);
  auto self = WouldCreateCycle(*store_, page1_, page1_);
  ASSERT_TRUE(self.ok());
  EXPECT_TRUE(*self);
}

TEST_F(AlgoTest, IsAcyclicOnDagAndCycle) {
  BuildLineage();
  auto acyclic = IsAcyclic(*store_);
  ASSERT_TRUE(acyclic.ok());
  EXPECT_TRUE(*acyclic);
  MustAddEdge(download_, search_);  // close the loop
  acyclic = IsAcyclic(*store_);
  ASSERT_TRUE(acyclic.ok());
  EXPECT_FALSE(*acyclic);
}

TEST_F(AlgoTest, IsAcyclicWithFilterIgnoresFilteredEdges) {
  BuildLineage();
  MustAddEdge(download_, search_, /*kind=*/99);
  EdgeFilter ignore99 = [](const EdgeRef& e) { return e.kind() != 99; };
  auto acyclic = IsAcyclic(*store_, ignore99);
  ASSERT_TRUE(acyclic.ok());
  EXPECT_TRUE(*acyclic);
}

// ------------------------------------------------------ interval index

TEST(IntervalIndexTest, BasicOverlap) {
  IntervalIndex index({{TimeSpan{0, 10}, 1},
                       {TimeSpan{5, 15}, 2},
                       {TimeSpan{20, 30}, 3}});
  auto hits = index.Overlapping(TimeSpan{8, 12});
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<uint64_t>{1, 2}));
  EXPECT_TRUE(index.Overlapping(TimeSpan{15, 20}).empty());  // half-open gap
  auto at = index.At(25);
  EXPECT_EQ(at, (std::vector<uint64_t>{3}));
}

TEST(IntervalIndexTest, StillOpenIntervalsMatchForever) {
  IntervalIndex index({{TimeSpan{100, util::kTimeMax}, 7}});
  EXPECT_EQ(index.At(1000000).size(), 1u);
  EXPECT_TRUE(index.Overlapping(TimeSpan{0, 100}).empty());
}

TEST(IntervalIndexTest, EmptyIndexAndEmptyQuery) {
  IntervalIndex index;
  EXPECT_TRUE(index.Overlapping(TimeSpan{0, 100}).empty());
  IntervalIndex nonempty({{TimeSpan{0, 1}, 1}});
  EXPECT_TRUE(nonempty.Overlapping(TimeSpan{5, 5}).empty());  // empty query
}

struct IntervalFuzzParams {
  uint64_t seed;
  int intervals;
  int queries;
  int64_t horizon;
};

class IntervalIndexFuzzTest
    : public ::testing::TestWithParam<IntervalFuzzParams> {};

TEST_P(IntervalIndexFuzzTest, MatchesBruteForce) {
  const auto& params = GetParam();
  Rng rng(params.seed);
  std::vector<IntervalIndex::Entry> entries;
  for (int i = 0; i < params.intervals; ++i) {
    int64_t open = rng.UniformRange(0, params.horizon);
    int64_t len = rng.UniformRange(1, params.horizon / 10 + 1);
    // ~10% of intervals are still open.
    util::TimeMs close =
        rng.Bernoulli(0.1) ? util::kTimeMax : open + len;
    entries.push_back({TimeSpan{open, close}, static_cast<uint64_t>(i)});
  }
  IntervalIndex index(entries);

  for (int q = 0; q < params.queries; ++q) {
    int64_t open = rng.UniformRange(0, params.horizon);
    int64_t len = rng.UniformRange(1, params.horizon / 5 + 1);
    TimeSpan query{open, open + len};
    auto got = index.Overlapping(query);
    std::sort(got.begin(), got.end());
    std::vector<uint64_t> want;
    for (const auto& entry : entries) {
      if (entry.span.Overlaps(query)) want.push_back(entry.payload);
    }
    ASSERT_EQ(got, want) << "query [" << query.open << "," << query.close
                         << ") seed " << params.seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IntervalIndexFuzzTest,
    ::testing::Values(IntervalFuzzParams{1, 50, 200, 1000},
                      IntervalFuzzParams{2, 500, 200, 10000},
                      IntervalFuzzParams{3, 2000, 100, 5000},
                      IntervalFuzzParams{4, 10, 100, 50},
                      IntervalFuzzParams{5, 1000, 100, 100}),
    [](const ::testing::TestParamInfo<IntervalFuzzParams>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace bp::graph
