// Use-case tests: each Section 2 scenario, run end-to-end on its planted
// event stream. These tests assert the paper's central qualitative
// claims: the provenance condition finds what the baseline cannot.
#include <gtest/gtest.h>

#include <algorithm>

#include "capture/bus.hpp"
#include "capture/recorders.hpp"
#include "search/history_search.hpp"
#include "search/lineage.hpp"
#include "search/personalize.hpp"
#include "search/time_context.hpp"
#include "sim/scenario.hpp"
#include "storage/env.hpp"

namespace bp::search {
namespace {

using capture::EventBus;
using capture::ProvenanceRecorder;
using storage::DbOptions;
using storage::MemEnv;

class UseCaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DbOptions opts;
    opts.env = &env_;
    opts.sync = false;
    auto db = storage::Db::Open("uc.db", opts);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    auto store = prov::ProvStore::Open(*db_, {});
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
    recorder_ = std::make_unique<ProvenanceRecorder>(*store_);
    bus_.Subscribe(recorder_.get());
  }

  void Ingest(const std::vector<capture::BrowserEvent>& events) {
    ASSERT_TRUE(bus_.PublishAll(events).ok());
    auto searcher = HistorySearcher::Open(*db_, *store_);
    ASSERT_TRUE(searcher.ok());
    searcher_ = std::move(*searcher);
  }

  // Rank (1-based) of `url` in `pages`; 0 if absent.
  static size_t RankOf(const std::vector<RankedPage>& pages,
                       const std::string& url) {
    for (size_t i = 0; i < pages.size(); ++i) {
      if (pages[i].url == url) return i + 1;
    }
    return 0;
  }

  MemEnv env_;
  std::unique_ptr<storage::Db> db_;
  std::unique_ptr<prov::ProvStore> store_;
  std::unique_ptr<ProvenanceRecorder> recorder_;
  std::unique_ptr<HistorySearcher> searcher_;
  EventBus bus_;
};

// ---------------------------------------------------------- UC 2.1

TEST_F(UseCaseTest, ContextualSearchFindsCitizenKane) {
  sim::RosebudScenario scenario = sim::MakeRosebudScenario();
  Ingest(scenario.events);

  // Baseline: textual search returns the results page (it contains the
  // term) but NOT Citizen Kane (it does not).
  auto textual = searcher_->TextualSearch(scenario.query, 10);
  ASSERT_TRUE(textual.ok());
  EXPECT_GT(RankOf(textual->pages, scenario.results_url), 0u);
  EXPECT_EQ(RankOf(textual->pages, scenario.target_url), 0u)
      << "baseline should NOT find the film page";

  // Provenance: the film page descends from the rosebud search and is
  // returned.
  auto contextual = searcher_->ContextualSearch(scenario.query, {});
  ASSERT_TRUE(contextual.ok());
  size_t rank = RankOf(contextual->pages, scenario.target_url);
  EXPECT_GT(rank, 0u) << "provenance search must find Citizen Kane";
  EXPECT_LE(rank, 3u);
}

TEST_F(UseCaseTest, ContextualSearchHonorsBudget) {
  sim::RosebudScenario scenario = sim::MakeRosebudScenario();
  Ingest(scenario.events);

  util::QueryBudget budget = util::QueryBudget::WithNodeCap(1);
  ContextualSearchOptions options;
  options.budget = &budget;
  auto result = searcher_->ContextualSearch(scenario.query, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->truncated);
  // Anytime semantics: still returns whatever it had.
}

// ---------------------------------------------------------- UC 2.2

TEST_F(UseCaseTest, PersonalizationLearnsFlowerContext) {
  sim::GardenerScenario scenario = sim::MakeGardenerScenario();
  Ingest(scenario.events);

  auto result = PersonalizeQuery(*searcher_, scenario.ambiguous_query);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->expansion_terms.empty());
  const std::string& picked = result->expansion_terms[0];
  EXPECT_NE(std::find(scenario.expected_context_terms.begin(),
                      scenario.expected_context_terms.end(), picked),
            scenario.expected_context_terms.end())
      << "picked unexpected expansion term: " << picked;

  // Privacy: the only bytes that would reach the engine are the
  // augmented query.
  EXPECT_EQ(result->AugmentedQuery(), "rosebud " + picked);
  EXPECT_EQ(result->DisclosedBytes(), result->AugmentedQuery().size());
}

TEST_F(UseCaseTest, PersonalizationWithoutHistoryIsHarmless) {
  Ingest({});  // empty history
  auto result = PersonalizeQuery(*searcher_, "rosebud");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->expansion_terms.empty());
  EXPECT_EQ(result->AugmentedQuery(), "rosebud");
}

// ---------------------------------------------------------- UC 2.3

TEST_F(UseCaseTest, TimeContextFindsTheWineSeenWithPlaneTickets) {
  sim::WineScenario scenario = sim::MakeWineScenario();
  Ingest(scenario.events);

  // Baseline text search for "wine": many candidates, target buried.
  auto textual = searcher_->TextualSearch(scenario.wine_query, 20);
  ASSERT_TRUE(textual.ok());
  EXPECT_GT(textual->pages.size(), 3u);

  auto timed = TimeContextualSearch(*searcher_, scenario.wine_query,
                                    scenario.context_query);
  ASSERT_TRUE(timed.ok());
  ASSERT_FALSE(timed->matches.empty());
  EXPECT_EQ(timed->matches[0].page.url, scenario.target_url)
      << "co-open boost must lift the remembered wine page to rank 1";
  EXPECT_TRUE(timed->matches[0].co_open);
  EXPECT_GT(timed->matches[0].overlap_ms, 0.0);
  // Decoys must not be flagged co-open.
  for (size_t i = 1; i < timed->matches.size(); ++i) {
    if (timed->matches[i].page.url != scenario.target_url) {
      EXPECT_FALSE(timed->matches[i].co_open)
          << timed->matches[i].page.url;
    }
  }
}

TEST_F(UseCaseTest, TimeContextDegradesWithoutCloseTimes) {
  // Section 3.2: without closes, "every page is always open" — every
  // wine page appears co-open with the flight page and the boost stops
  // discriminating.
  DbOptions opts;
  opts.env = &env_;
  opts.sync = false;
  auto db = storage::Db::Open("noclose.db", opts);
  ASSERT_TRUE(db.ok());
  prov::ProvOptions popts;
  popts.record_close_times = false;
  auto store = prov::ProvStore::Open(**db, popts);
  ASSERT_TRUE(store.ok());
  ProvenanceRecorder recorder(**store);
  EventBus bus;
  bus.Subscribe(&recorder);

  sim::WineScenario scenario = sim::MakeWineScenario();
  ASSERT_TRUE(bus.PublishAll(scenario.events).ok());
  auto searcher = HistorySearcher::Open(**db, **store);
  ASSERT_TRUE(searcher.ok());

  auto timed = TimeContextualSearch(**searcher, scenario.wine_query,
                                    scenario.context_query);
  ASSERT_TRUE(timed.ok());
  size_t co_open_count = 0;
  for (const TimeContextMatch& match : timed->matches) {
    if (match.co_open) ++co_open_count;
  }
  // Everything overlapping: the boost is no longer selective.
  EXPECT_GT(co_open_count, 1u);
}

// ---------------------------------------------------------- UC 2.4

TEST_F(UseCaseTest, DownloadLineageFindsRecognizableAncestor) {
  sim::MalwareScenario scenario = sim::MakeMalwareScenario();
  Ingest(scenario.events);

  prov::NodeId download =
      recorder_->download_map().at(scenario.download_id);
  auto report = TraceDownload(*store_, download);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->found_recognizable);
  EXPECT_EQ(report->recognizable_url, scenario.portal_url)
      << "the often-visited portal is the first recognizable ancestor";

  // The path runs portal -> shortener -> codec site -> ... -> download.
  ASSERT_GE(report->path.size(), 3u);
  EXPECT_EQ(report->path.front().url, scenario.portal_url);
  EXPECT_NE(report->path.back().label.find("download"), std::string::npos);
}

TEST_F(UseCaseTest, DownloadLineageRespectsThreshold) {
  sim::MalwareScenario scenario = sim::MakeMalwareScenario();
  Ingest(scenario.events);
  prov::NodeId download =
      recorder_->download_map().at(scenario.download_id);

  // With an absurd threshold nothing is recognizable.
  LineageOptions options;
  options.min_visit_count = 10000;
  auto report = TraceDownload(*store_, download, options);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->found_recognizable);
}

TEST_F(UseCaseTest, DescendantDownloadsOfUntrustedPage) {
  sim::MalwareScenario scenario = sim::MakeMalwareScenario();
  Ingest(scenario.events);

  auto report = DescendantDownloads(*store_, scenario.untrusted_url);
  ASSERT_TRUE(report.ok());
  // Both the codec installer AND the later bonus pack descend from the
  // untrusted page.
  ASSERT_EQ(report->downloads.size(), 2u);
  EXPECT_GT(report->stats.rows_scanned, 0u);
  EXPECT_GT(report->stats.nodes_visited, 0u);
  std::vector<std::string> targets;
  for (const auto& d : report->downloads) targets.push_back(d.target_path);
  std::sort(targets.begin(), targets.end());
  EXPECT_EQ(targets[0], "/home/user/Downloads/bonus-pack.exe");
  EXPECT_EQ(targets[1], scenario.download_target);

  // An unrelated page has no descendant downloads.
  auto none = DescendantDownloads(*store_, scenario.portal_url);
  ASSERT_TRUE(none.ok());
  // The portal is an ancestor of everything here, so it WILL see the
  // downloads; use a leaf page instead.
  auto missing = DescendantDownloads(*store_, "http://nowhere.example/");
  EXPECT_TRUE(missing.status().IsNotFound());
}

TEST_F(UseCaseTest, LineageWithBudgetTruncates) {
  sim::MalwareScenario scenario = sim::MakeMalwareScenario();
  Ingest(scenario.events);
  prov::NodeId download =
      recorder_->download_map().at(scenario.download_id);

  util::QueryBudget budget = util::QueryBudget::WithNodeCap(2);
  LineageOptions options;
  options.budget = &budget;
  auto report = TraceDownload(*store_, download, options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->truncated);
}

}  // namespace
}  // namespace bp::search
