// Negative-compile probe for the thread-safety annotations.
//
// Compiled twice by tests/negative_compile/CMakeLists.txt under
// -Werror=thread-safety:
//   * with -DBP_TAKE_THE_LOCK: the guarded access happens under a
//     MutexLock — MUST compile (control: proves the harness and
//     includes are sound, so a failure below means the analysis fired,
//     not that the file is broken).
//   * without it: the same access with no lock held — MUST FAIL with
//     "writing variable 'value' requires holding mutex 'mu'", proving
//     BP_GUARDED_BY is live and not expanding to nothing.
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace {

struct Counter {
  bp::util::Mutex mu;
  int value BP_GUARDED_BY(mu) = 0;

  int Increment() {
#if defined(BP_TAKE_THE_LOCK)
    bp::util::MutexLock lock(mu);
#endif
    return ++value;
  }
};

}  // namespace

int main() {
  Counter c;
  return c.Increment() == 1 ? 0 : 1;
}
