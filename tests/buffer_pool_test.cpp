// BufferPool unit tests: image-identity keying, insert-race adoption,
// byte-budget eviction in LRU order, pinned frames surviving every
// eviction pass, and counter accounting. The pool's integration with
// snapshots (sharing across commit horizons, thrash stability) lives in
// snapshot_test.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "storage/buffer_pool.hpp"

namespace bp::storage {
namespace {

std::shared_ptr<const std::string> Image(char fill) {
  return std::make_shared<const std::string>(kPageSize, fill);
}

compress::CompressionOptions Mode(compress::CompressionOptions::Mode mode) {
  compress::CompressionOptions options;
  options.mode = mode;
  return options;
}

compress::CompressionOptions Off() {
  return Mode(compress::CompressionOptions::Mode::kOff);
}

compress::CompressionOptions Fast() {
  return Mode(compress::CompressionOptions::Mode::kFast);
}

// Compressible but distinct per id: a repeating tag the LZ matcher eats,
// with the id stamped at both ends so promoted bytes are checkable.
std::shared_ptr<const std::string> TaggedImage(PageId id) {
  const char tag = static_cast<char>('A' + id % 26);
  std::string page(kPageSize, tag);
  page.front() = static_cast<char>(id);
  page.back() = static_cast<char>(id * 7);
  return std::make_shared<const std::string>(std::move(page));
}

PageImageKey Key(PageId id, uint64_t offset = kMainFileImage,
                 uint32_t generation = 0) {
  return PageImageKey{/*owner=*/1, id, generation, offset};
}

TEST(BufferPoolTest, LookupMissThenInsertThenHit) {
  BufferPool pool(1 << 20);
  EXPECT_EQ(pool.Lookup(Key(3)), nullptr);

  auto page = Image('a');
  auto resident = pool.Insert(Key(3), page);
  EXPECT_EQ(resident.get(), page.get());

  auto hit = pool.Lookup(Key(3));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), page.get());

  BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.frames, 1u);
  EXPECT_EQ(stats.bytes, uint64_t{kPageSize});
}

TEST(BufferPoolTest, DistinctVersionsAreDistinctFrames) {
  // Same page id at different offsets/generations = different immutable
  // images; the pool must never conflate them.
  BufferPool pool(1 << 20);
  (void)pool.Insert(Key(7, /*offset=*/100), Image('x'));
  (void)pool.Insert(Key(7, /*offset=*/200), Image('y'));
  (void)pool.Insert(Key(7, kMainFileImage, /*generation=*/2), Image('z'));

  EXPECT_EQ(pool.Lookup(Key(7, 100))->front(), 'x');
  EXPECT_EQ(pool.Lookup(Key(7, 200))->front(), 'y');
  EXPECT_EQ(pool.Lookup(Key(7, kMainFileImage, 2))->front(), 'z');
  EXPECT_EQ(pool.stats().frames, 3u);
}

TEST(BufferPoolTest, InsertRaceAdoptsTheResidentFrame) {
  // Two concurrent first readers fetch the same image; the second
  // Insert must return the first frame so everyone shares one copy.
  BufferPool pool(1 << 20);
  auto winner = Image('w');
  auto loser = Image('w');
  auto first = pool.Insert(Key(9, 50), winner);
  auto second = pool.Insert(Key(9, 50), loser);
  EXPECT_EQ(first.get(), winner.get());
  EXPECT_EQ(second.get(), winner.get());
  BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.reinserts, 1u);
  EXPECT_EQ(stats.frames, 1u);
}

TEST(BufferPoolTest, EvictsColdestFirstUnderByteBudget) {
  // Budget of ~4 pages per shard; hammer one shard's keyspace far past
  // it and confirm (a) the budget holds, (b) recently touched frames
  // survive over cold ones.
  const size_t budget = BufferPool::kShards * 4 * kPageSize;
  BufferPool pool(budget);
  for (PageId id = 1; id <= 64; ++id) {
    (void)pool.Insert(Key(id, id), Image(static_cast<char>(id)));
  }
  BufferPoolStats stats = pool.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, budget);

  // The most recent insert in some shard must still be resident.
  EXPECT_NE(pool.Lookup(Key(64, 64)), nullptr);
}

TEST(BufferPoolTest, PinnedFramesAreNeverEvicted) {
  // Hold a reference to one image (a live PageView would do the same),
  // then thrash the pool way past its budget: the pinned frame must
  // stay resident AND byte-identical throughout.
  const size_t budget = BufferPool::kShards * 2 * kPageSize;
  BufferPool pool(budget);
  auto pinned = pool.Insert(Key(1, 10), Image('p'));
  for (PageId id = 2; id <= 200; ++id) {
    (void)pool.Insert(Key(id, uint64_t{id} * 16), Image('f'));
  }
  auto still_there = pool.Lookup(Key(1, 10));
  ASSERT_NE(still_there, nullptr);
  EXPECT_EQ(still_there.get(), pinned.get());
  EXPECT_EQ(*still_there, std::string(kPageSize, 'p'));
  EXPECT_GT(pool.stats().pinned_skips, 0u);
}

TEST(BufferPoolTest, ReleasedFramesBecomeEvictable) {
  // Compression pinned off: this test asserts eviction FORGETS, and the
  // cold tier exists precisely to remember (covered separately below).
  const size_t budget = BufferPool::kShards * 2 * kPageSize;
  BufferPool pool(budget, Off());
  auto pinned = pool.Insert(Key(1, 10), Image('p'));
  pinned.reset();  // unpin
  for (PageId id = 2; id <= 200; ++id) {
    (void)pool.Insert(Key(id, uint64_t{id} * 16), Image('f'));
  }
  // With 199 insertions across 16 shards, frame (1,10)'s shard has seen
  // many times its budget; the now-unpinned frame must be long gone.
  EXPECT_EQ(pool.Lookup(Key(1, 10)), nullptr);
}

TEST(BufferPoolTest, EvictedImageSurvivesViaSharedOwnership) {
  // Even when eviction does drop a frame the caller still holds, the
  // bytes must stay alive and immutable through the shared_ptr.
  const size_t budget = BufferPool::kShards * 1 * kPageSize;
  BufferPool pool(budget);
  std::shared_ptr<const std::string> held;
  {
    held = pool.Insert(Key(1, 10), Image('h'));
  }
  for (PageId id = 2; id <= 400; ++id) {
    (void)pool.Insert(Key(id, uint64_t{id} * 16), Image('f'));
  }
  EXPECT_EQ(*held, std::string(kPageSize, 'h'));
}

TEST(BufferPoolTest, OwnerIdsSeparateSharers) {
  // Two pagers sharing one pool must never alias, even at identical
  // (page, generation, offset) coordinates.
  BufferPool pool(1 << 20);
  PageImageKey a{/*owner=*/1, /*id=*/5, /*generation=*/0, /*offset=*/64};
  PageImageKey b{/*owner=*/2, /*id=*/5, /*generation=*/0, /*offset=*/64};
  (void)pool.Insert(a, Image('a'));
  (void)pool.Insert(b, Image('b'));
  EXPECT_EQ(pool.Lookup(a)->front(), 'a');
  EXPECT_EQ(pool.Lookup(b)->front(), 'b');
}

TEST(BufferPoolTest, ConcurrentMixedTrafficKeepsImagesIntact) {
  // 8 threads hammer overlapping keys with lookups and inserts under a
  // small budget (constant churn). Every observed image must be intact:
  // the key determines the fill byte, so any cross-thread tearing or
  // eviction-during-use shows up as a wrong byte. (Run under TSan in CI
  // via the storage test suite.)
  const size_t budget = BufferPool::kShards * 2 * kPageSize;
  BufferPool pool(budget);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  std::vector<std::thread> workers;
  std::atomic<uint64_t> bad{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        PageId id = static_cast<PageId>(1 + (i * (t + 1)) % 97);
        const char fill = static_cast<char>('a' + id % 26);
        PageImageKey key = Key(id, uint64_t{id} * 8);
        std::shared_ptr<const std::string> image = pool.Lookup(key);
        if (image == nullptr) {
          image = pool.Insert(
              key, std::make_shared<const std::string>(kPageSize, fill));
        }
        if (image->front() != fill || image->back() != fill ||
            image->size() != kPageSize) {
          bad.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(bad.load(), 0u);
  BufferPoolStats stats = pool.stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_LE(stats.bytes, budget);
}

TEST(BufferPoolTest, ColdTierDemotesAndPromotesOnLookup) {
  // Thrash one shard's keyspace past a tiny budget with compressible
  // images: evictions must demote into the cold tier, and a lookup of a
  // demoted key must decompress back the exact bytes and re-warm them.
  const size_t budget = BufferPool::kShards * 4 * kPageSize;
  BufferPool pool(budget, Fast());
  for (PageId id = 1; id <= 128; ++id) {
    (void)pool.Insert(Key(id, id), TaggedImage(id));
  }
  BufferPoolStats stats = pool.stats();
  EXPECT_GT(stats.cold_demotions, 0u);
  EXPECT_GT(stats.cold_frames, 0u);
  EXPECT_LE(stats.bytes, budget);

  // Find a demoted key (not hot, still cold) and pin it back.
  bool promoted = false;
  for (PageId id = 128; id >= 1 && !promoted; --id) {
    BufferPoolStats before = pool.stats();
    auto hit = pool.Lookup(Key(id, id));
    BufferPoolStats after = pool.stats();
    if (after.cold_hits == before.cold_hits + 1) {
      promoted = true;
      ASSERT_NE(hit, nullptr);
      EXPECT_EQ(*hit, *TaggedImage(id));
      // Promoted: the same key is now a plain hot hit.
      auto again = pool.Lookup(Key(id, id));
      ASSERT_NE(again, nullptr);
      EXPECT_EQ(again.get(), hit.get());
      EXPECT_EQ(pool.stats().cold_hits, after.cold_hits);
    }
  }
  EXPECT_TRUE(promoted);
}

TEST(BufferPoolTest, ColdTierHoldsBudgetAndCap) {
  // Even under sustained churn the invariants hold: total bytes within
  // the budget, and the cold share within half of it (the cap that
  // keeps tiny compressed frames from starving the hot tier).
  const size_t budget = BufferPool::kShards * 4 * kPageSize;
  // Enough churn that even tiny (~100-byte) compressed frames overflow
  // the per-shard cold cap and force cold evictions.
  BufferPool pool(budget, Fast());
  for (PageId id = 1; id <= 16384; ++id) {
    (void)pool.Insert(Key(id, id), TaggedImage(id));
  }
  BufferPoolStats stats = pool.stats();
  EXPECT_GT(stats.cold_demotions, 0u);
  EXPECT_GT(stats.cold_evictions, 0u);
  EXPECT_LE(stats.bytes, budget);
  EXPECT_LE(stats.cold_bytes, budget / 2);
  // cold_bytes is counted inside bytes; frames counts hot only.
  EXPECT_GE(stats.bytes, stats.cold_bytes);
}

TEST(BufferPoolTest, IncompressiblePagesAreDroppedNotDemoted) {
  // Images that fail the ratio floor (pseudo-random bytes) must fall
  // back to plain forget-eviction, never a cold frame that would waste
  // budget on incompressible payloads plus header.
  const size_t budget = BufferPool::kShards * 2 * kPageSize;
  BufferPool pool(budget, Fast());
  uint64_t x = 0x9e3779b97f4a7c15ull;
  for (PageId id = 1; id <= 96; ++id) {
    std::string page(kPageSize, '\0');
    for (size_t i = 0; i < page.size(); ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      page[i] = static_cast<char>(x);
    }
    (void)pool.Insert(Key(id, id),
                      std::make_shared<const std::string>(std::move(page)));
  }
  BufferPoolStats stats = pool.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.cold_demotions, 0u);
  EXPECT_EQ(stats.cold_frames, 0u);
  EXPECT_EQ(stats.cold_bytes, 0u);
}

TEST(BufferPoolTest, ColdTierDisabledIsTrulyOff) {
  // compression=off must leave zero trace of the cold tier: no
  // demotions, no cold bytes, no cold hits — the PR's zero-cost-when-
  // disabled contract for the pool half of the diet.
  const size_t budget = BufferPool::kShards * 2 * kPageSize;
  BufferPool pool(budget, Off());
  for (PageId id = 1; id <= 256; ++id) {
    (void)pool.Insert(Key(id, id), TaggedImage(id));
  }
  for (PageId id = 1; id <= 256; ++id) {
    (void)pool.Lookup(Key(id, id));
  }
  BufferPoolStats stats = pool.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.cold_demotions, 0u);
  EXPECT_EQ(stats.cold_hits, 0u);
  EXPECT_EQ(stats.cold_frames, 0u);
  EXPECT_EQ(stats.cold_bytes, 0u);
}

TEST(BufferPoolTest, DropOwnerAlsoClearsColdFrames) {
  // A closing pager's cold frames must not squat on the shared budget:
  // DropOwner clears them (they are never pinned, so unconditionally).
  const size_t budget = BufferPool::kShards * 4 * kPageSize;
  BufferPool pool(budget, Fast());
  for (PageId id = 1; id <= 128; ++id) {
    (void)pool.Insert(Key(id, id), TaggedImage(id));
  }
  ASSERT_GT(pool.stats().cold_frames, 0u);
  EXPECT_GT(pool.DropOwner(1), 0u);
  BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.cold_frames, 0u);
  EXPECT_EQ(stats.cold_bytes, 0u);
  EXPECT_EQ(stats.frames, 0u);
}

TEST(BufferPoolTest, ConcurrentColdTierTrafficKeepsImagesIntact) {
  // The mixed-traffic hammer with the cold tier live: demotions,
  // promotions, and cold evictions racing across 8 threads must never
  // surface torn or wrong bytes. (Runs under TSan in CI.)
  const size_t budget = BufferPool::kShards * 2 * kPageSize;
  BufferPool pool(budget, Fast());
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  std::vector<std::thread> workers;
  std::atomic<uint64_t> bad{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        PageId id = static_cast<PageId>(1 + (i * (t + 1)) % 97);
        PageImageKey key = Key(id, uint64_t{id} * 8);
        std::shared_ptr<const std::string> image = pool.Lookup(key);
        if (image == nullptr) image = pool.Insert(key, TaggedImage(id));
        const auto expect = TaggedImage(id);
        if (image->size() != kPageSize ||
            image->front() != expect->front() ||
            image->back() != expect->back()) {
          bad.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(bad.load(), 0u);
  BufferPoolStats stats = pool.stats();
  EXPECT_GT(stats.cold_demotions, 0u);
  EXPECT_GT(stats.cold_hits, 0u);
  EXPECT_LE(stats.bytes, budget);
}

TEST(BufferPoolTest, DropOwnerForgetsOnlyThatOwnersUnpinnedFrames) {
  BufferPool pool(1 << 20);
  PageImageKey mine_cold{/*owner=*/1, /*id=*/1, /*generation=*/0,
                         /*offset=*/8};
  PageImageKey mine_held{/*owner=*/1, /*id=*/2, /*generation=*/0,
                         /*offset=*/16};
  PageImageKey theirs{/*owner=*/2, /*id=*/1, /*generation=*/0, /*offset=*/8};
  (void)pool.Insert(mine_cold, Image('c'));
  auto held = pool.Insert(mine_held, Image('h'));  // pinned by `held`
  (void)pool.Insert(theirs, Image('t'));

  // Drops the cold frame, spares the pinned one and the other owner's.
  EXPECT_EQ(pool.DropOwner(1), 1u);
  EXPECT_EQ(pool.Lookup(mine_cold), nullptr);
  ASSERT_NE(pool.Lookup(mine_held), nullptr);
  ASSERT_NE(pool.Lookup(theirs), nullptr);
  EXPECT_EQ(pool.Lookup(theirs)->front(), 't');

  // Once the caller releases the image, a second drop reclaims it.
  held.reset();
  EXPECT_EQ(pool.DropOwner(1), 1u);
  EXPECT_EQ(pool.Lookup(mine_held), nullptr);
  // The other owner is untouched throughout.
  EXPECT_NE(pool.Lookup(theirs), nullptr);
}

}  // namespace
}  // namespace bp::storage
