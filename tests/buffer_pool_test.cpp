// BufferPool unit tests: image-identity keying, insert-race adoption,
// byte-budget eviction in LRU order, pinned frames surviving every
// eviction pass, and counter accounting. The pool's integration with
// snapshots (sharing across commit horizons, thrash stability) lives in
// snapshot_test.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "storage/buffer_pool.hpp"

namespace bp::storage {
namespace {

std::shared_ptr<const std::string> Image(char fill) {
  return std::make_shared<const std::string>(kPageSize, fill);
}

PageImageKey Key(PageId id, uint64_t offset = kMainFileImage,
                 uint32_t generation = 0) {
  return PageImageKey{/*owner=*/1, id, generation, offset};
}

TEST(BufferPoolTest, LookupMissThenInsertThenHit) {
  BufferPool pool(1 << 20);
  EXPECT_EQ(pool.Lookup(Key(3)), nullptr);

  auto page = Image('a');
  auto resident = pool.Insert(Key(3), page);
  EXPECT_EQ(resident.get(), page.get());

  auto hit = pool.Lookup(Key(3));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), page.get());

  BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.frames, 1u);
  EXPECT_EQ(stats.bytes, uint64_t{kPageSize});
}

TEST(BufferPoolTest, DistinctVersionsAreDistinctFrames) {
  // Same page id at different offsets/generations = different immutable
  // images; the pool must never conflate them.
  BufferPool pool(1 << 20);
  (void)pool.Insert(Key(7, /*offset=*/100), Image('x'));
  (void)pool.Insert(Key(7, /*offset=*/200), Image('y'));
  (void)pool.Insert(Key(7, kMainFileImage, /*generation=*/2), Image('z'));

  EXPECT_EQ(pool.Lookup(Key(7, 100))->front(), 'x');
  EXPECT_EQ(pool.Lookup(Key(7, 200))->front(), 'y');
  EXPECT_EQ(pool.Lookup(Key(7, kMainFileImage, 2))->front(), 'z');
  EXPECT_EQ(pool.stats().frames, 3u);
}

TEST(BufferPoolTest, InsertRaceAdoptsTheResidentFrame) {
  // Two concurrent first readers fetch the same image; the second
  // Insert must return the first frame so everyone shares one copy.
  BufferPool pool(1 << 20);
  auto winner = Image('w');
  auto loser = Image('w');
  auto first = pool.Insert(Key(9, 50), winner);
  auto second = pool.Insert(Key(9, 50), loser);
  EXPECT_EQ(first.get(), winner.get());
  EXPECT_EQ(second.get(), winner.get());
  BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.reinserts, 1u);
  EXPECT_EQ(stats.frames, 1u);
}

TEST(BufferPoolTest, EvictsColdestFirstUnderByteBudget) {
  // Budget of ~4 pages per shard; hammer one shard's keyspace far past
  // it and confirm (a) the budget holds, (b) recently touched frames
  // survive over cold ones.
  const size_t budget = BufferPool::kShards * 4 * kPageSize;
  BufferPool pool(budget);
  for (PageId id = 1; id <= 64; ++id) {
    (void)pool.Insert(Key(id, id), Image(static_cast<char>(id)));
  }
  BufferPoolStats stats = pool.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, budget);

  // The most recent insert in some shard must still be resident.
  EXPECT_NE(pool.Lookup(Key(64, 64)), nullptr);
}

TEST(BufferPoolTest, PinnedFramesAreNeverEvicted) {
  // Hold a reference to one image (a live PageView would do the same),
  // then thrash the pool way past its budget: the pinned frame must
  // stay resident AND byte-identical throughout.
  const size_t budget = BufferPool::kShards * 2 * kPageSize;
  BufferPool pool(budget);
  auto pinned = pool.Insert(Key(1, 10), Image('p'));
  for (PageId id = 2; id <= 200; ++id) {
    (void)pool.Insert(Key(id, uint64_t{id} * 16), Image('f'));
  }
  auto still_there = pool.Lookup(Key(1, 10));
  ASSERT_NE(still_there, nullptr);
  EXPECT_EQ(still_there.get(), pinned.get());
  EXPECT_EQ(*still_there, std::string(kPageSize, 'p'));
  EXPECT_GT(pool.stats().pinned_skips, 0u);
}

TEST(BufferPoolTest, ReleasedFramesBecomeEvictable) {
  const size_t budget = BufferPool::kShards * 2 * kPageSize;
  BufferPool pool(budget);
  auto pinned = pool.Insert(Key(1, 10), Image('p'));
  pinned.reset();  // unpin
  for (PageId id = 2; id <= 200; ++id) {
    (void)pool.Insert(Key(id, uint64_t{id} * 16), Image('f'));
  }
  // With 199 insertions across 16 shards, frame (1,10)'s shard has seen
  // many times its budget; the now-unpinned frame must be long gone.
  EXPECT_EQ(pool.Lookup(Key(1, 10)), nullptr);
}

TEST(BufferPoolTest, EvictedImageSurvivesViaSharedOwnership) {
  // Even when eviction does drop a frame the caller still holds, the
  // bytes must stay alive and immutable through the shared_ptr.
  const size_t budget = BufferPool::kShards * 1 * kPageSize;
  BufferPool pool(budget);
  std::shared_ptr<const std::string> held;
  {
    held = pool.Insert(Key(1, 10), Image('h'));
  }
  for (PageId id = 2; id <= 400; ++id) {
    (void)pool.Insert(Key(id, uint64_t{id} * 16), Image('f'));
  }
  EXPECT_EQ(*held, std::string(kPageSize, 'h'));
}

TEST(BufferPoolTest, OwnerIdsSeparateSharers) {
  // Two pagers sharing one pool must never alias, even at identical
  // (page, generation, offset) coordinates.
  BufferPool pool(1 << 20);
  PageImageKey a{/*owner=*/1, /*id=*/5, /*generation=*/0, /*offset=*/64};
  PageImageKey b{/*owner=*/2, /*id=*/5, /*generation=*/0, /*offset=*/64};
  (void)pool.Insert(a, Image('a'));
  (void)pool.Insert(b, Image('b'));
  EXPECT_EQ(pool.Lookup(a)->front(), 'a');
  EXPECT_EQ(pool.Lookup(b)->front(), 'b');
}

TEST(BufferPoolTest, ConcurrentMixedTrafficKeepsImagesIntact) {
  // 8 threads hammer overlapping keys with lookups and inserts under a
  // small budget (constant churn). Every observed image must be intact:
  // the key determines the fill byte, so any cross-thread tearing or
  // eviction-during-use shows up as a wrong byte. (Run under TSan in CI
  // via the storage test suite.)
  const size_t budget = BufferPool::kShards * 2 * kPageSize;
  BufferPool pool(budget);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  std::vector<std::thread> workers;
  std::atomic<uint64_t> bad{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        PageId id = static_cast<PageId>(1 + (i * (t + 1)) % 97);
        const char fill = static_cast<char>('a' + id % 26);
        PageImageKey key = Key(id, uint64_t{id} * 8);
        std::shared_ptr<const std::string> image = pool.Lookup(key);
        if (image == nullptr) {
          image = pool.Insert(
              key, std::make_shared<const std::string>(kPageSize, fill));
        }
        if (image->front() != fill || image->back() != fill ||
            image->size() != kPageSize) {
          bad.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(bad.load(), 0u);
  BufferPoolStats stats = pool.stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_LE(stats.bytes, budget);
}

TEST(BufferPoolTest, DropOwnerForgetsOnlyThatOwnersUnpinnedFrames) {
  BufferPool pool(1 << 20);
  PageImageKey mine_cold{/*owner=*/1, /*id=*/1, /*generation=*/0,
                         /*offset=*/8};
  PageImageKey mine_held{/*owner=*/1, /*id=*/2, /*generation=*/0,
                         /*offset=*/16};
  PageImageKey theirs{/*owner=*/2, /*id=*/1, /*generation=*/0, /*offset=*/8};
  (void)pool.Insert(mine_cold, Image('c'));
  auto held = pool.Insert(mine_held, Image('h'));  // pinned by `held`
  (void)pool.Insert(theirs, Image('t'));

  // Drops the cold frame, spares the pinned one and the other owner's.
  EXPECT_EQ(pool.DropOwner(1), 1u);
  EXPECT_EQ(pool.Lookup(mine_cold), nullptr);
  ASSERT_NE(pool.Lookup(mine_held), nullptr);
  ASSERT_NE(pool.Lookup(theirs), nullptr);
  EXPECT_EQ(pool.Lookup(theirs)->front(), 't');

  // Once the caller releases the image, a second drop reclaims it.
  held.reset();
  EXPECT_EQ(pool.DropOwner(1), 1u);
  EXPECT_EQ(pool.Lookup(mine_held), nullptr);
  // The other owner is untouched throughout.
  EXPECT_NE(pool.Lookup(theirs), nullptr);
}

}  // namespace
}  // namespace bp::storage
