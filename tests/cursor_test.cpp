// Cursor contracts: BTree::Cursor, Table<T>::Cursor, and the graph
// cursors (EdgeCursor / NodeCursor), including resilience to writes
// interleaved with iteration and equivalence with the deprecated
// ForEach* wrappers on randomized graphs.
#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/cursor.hpp"
#include "graph/store.hpp"
#include "storage/btree.hpp"
#include "storage/db.hpp"
#include "storage/env.hpp"
#include "storage/table.hpp"
#include "util/rng.hpp"
#include "util/serde.hpp"

namespace bp::storage {
namespace {

using util::OrderedKeyU64;

class BTreeCursorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PagerOptions opts;
    opts.env = &env_;
    auto pager = Pager::Open("db", opts);
    ASSERT_TRUE(pager.ok());
    pager_ = std::move(*pager);
    ASSERT_TRUE(pager_->Begin().ok());
    auto root = BTree::Create(*pager_);
    ASSERT_TRUE(root.ok());
    ASSERT_TRUE(pager_->Commit().ok());
    tree_ = std::make_unique<BTree>(*pager_, *root);
  }

  std::vector<std::string> Collect(BTree::Cursor& cur) {
    std::vector<std::string> keys;
    for (; cur.Valid(); cur.Next()) keys.emplace_back(cur.key());
    EXPECT_TRUE(cur.status().ok()) << cur.status().ToString();
    return keys;
  }

  MemEnv env_;
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BTree> tree_;
};

TEST_F(BTreeCursorTest, EmptyTree) {
  BTree::Cursor cur = tree_->NewCursor();
  cur.SeekFirst();
  EXPECT_FALSE(cur.Valid());
  EXPECT_TRUE(cur.status().ok());
  cur.Seek("anything");
  EXPECT_FALSE(cur.Valid());
  cur.SeekPrefix("p");
  EXPECT_FALSE(cur.Valid());
  cur.Next();  // Next past end on an empty tree is a safe no-op
  EXPECT_FALSE(cur.Valid());
  EXPECT_TRUE(cur.status().ok());
}

TEST_F(BTreeCursorTest, SeekLandsOnLowerBound) {
  ASSERT_TRUE(tree_->Put("b", "1").ok());
  ASSERT_TRUE(tree_->Put("d", "2").ok());
  BTree::Cursor cur = tree_->NewCursor();
  cur.Seek("a");
  ASSERT_TRUE(cur.Valid());
  EXPECT_EQ(cur.key(), "b");
  cur.Seek("b");
  ASSERT_TRUE(cur.Valid());
  EXPECT_EQ(cur.key(), "b");
  cur.Seek("c");
  ASSERT_TRUE(cur.Valid());
  EXPECT_EQ(cur.key(), "d");
  EXPECT_EQ(cur.value(), "2");
  cur.Seek("e");
  EXPECT_FALSE(cur.Valid());
}

TEST_F(BTreeCursorTest, NextPastEndStays) {
  ASSERT_TRUE(tree_->Put("only", "v").ok());
  BTree::Cursor cur = tree_->NewCursor();
  cur.SeekFirst();
  ASSERT_TRUE(cur.Valid());
  cur.Next();
  EXPECT_FALSE(cur.Valid());
  cur.Next();  // extra Next calls are safe no-ops
  cur.Next();
  EXPECT_FALSE(cur.Valid());
  EXPECT_TRUE(cur.status().ok());
}

TEST_F(BTreeCursorTest, PrefixBoundaries) {
  // Keys around every edge of the "ab" prefix range, including one that
  // extends the prefix with 0xff bytes.
  for (const char* key : {"a", "ab", "abz", "ac", "b"}) {
    ASSERT_TRUE(tree_->Put(key, "v").ok());
  }
  std::string high("ab");
  high.push_back('\xff');
  ASSERT_TRUE(tree_->Put(high, "v").ok());

  BTree::Cursor cur = tree_->NewCursor();
  cur.SeekPrefix("ab");
  EXPECT_EQ(Collect(cur), (std::vector<std::string>{"ab", "abz", high}));

  cur.SeekPrefix("ac");
  EXPECT_EQ(Collect(cur), (std::vector<std::string>{"ac"}));

  cur.SeekPrefix("abzz");
  EXPECT_TRUE(Collect(cur).empty());

  // A Seek after a SeekPrefix clears the bound.
  cur.Seek("ac");
  EXPECT_EQ(Collect(cur), (std::vector<std::string>{"ac", "b"}));
}

TEST_F(BTreeCursorTest, PrefixAcrossLeafBoundaries) {
  // Enough same-prefix keys to split leaves; the bound must hold across
  // the leaf chain.
  for (const char* prefix : {"p", "q"}) {
    for (int i = 0; i < 500; ++i) {
      std::string key = prefix;
      key += OrderedKeyU64(i);
      ASSERT_TRUE(tree_->Put(key, "v").ok());
    }
  }
  BTree::Cursor cur = tree_->NewCursor();
  cur.SeekPrefix("p");
  EXPECT_EQ(Collect(cur).size(), 500u);
}

TEST_F(BTreeCursorTest, OverflowValuesMaterialize) {
  std::string big(50000, 'x');
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>('a' + (i % 26));
  }
  ASSERT_TRUE(tree_->Put("big", big).ok());
  ASSERT_TRUE(tree_->Put("small", "s").ok());
  BTree::Cursor cur = tree_->NewCursor();
  cur.SeekFirst();
  ASSERT_TRUE(cur.Valid());
  EXPECT_EQ(cur.key(), "big");
  EXPECT_EQ(cur.value(), big);
  cur.Next();
  ASSERT_TRUE(cur.Valid());
  EXPECT_EQ(cur.value(), "s");
}

TEST_F(BTreeCursorTest, DeleteCurrentKeyBetweenSeekAndNext) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(tree_->Put(OrderedKeyU64(i), "v").ok());
  }
  BTree::Cursor cur = tree_->NewCursor();
  cur.SeekFirst();
  ASSERT_TRUE(cur.Valid());
  EXPECT_EQ(cur.key(), OrderedKeyU64(0));
  // Delete the entry under the cursor; Next must land on the successor.
  ASSERT_TRUE(tree_->Delete(OrderedKeyU64(0)).ok());
  cur.Next();
  ASSERT_TRUE(cur.Valid());
  EXPECT_EQ(cur.key(), OrderedKeyU64(1));
  // Delete the entry AHEAD of the cursor; Next must skip past it.
  ASSERT_TRUE(tree_->Delete(OrderedKeyU64(2)).ok());
  cur.Next();
  ASSERT_TRUE(cur.Valid());
  EXPECT_EQ(cur.key(), OrderedKeyU64(3));
}

TEST_F(BTreeCursorTest, InsertsDuringIterationAreSeenAhead) {
  ASSERT_TRUE(tree_->Put(OrderedKeyU64(0), "v").ok());
  ASSERT_TRUE(tree_->Put(OrderedKeyU64(10), "v").ok());
  BTree::Cursor cur = tree_->NewCursor();
  cur.SeekFirst();
  ASSERT_TRUE(cur.Valid());
  // Insert between the current key and the next: the cursor sees it.
  ASSERT_TRUE(tree_->Put(OrderedKeyU64(5), "v").ok());
  cur.Next();
  ASSERT_TRUE(cur.Valid());
  EXPECT_EQ(cur.key(), OrderedKeyU64(5));
  cur.Next();
  ASSERT_TRUE(cur.Valid());
  EXPECT_EQ(cur.key(), OrderedKeyU64(10));
}

TEST_F(BTreeCursorTest, SurvivesLeafSplitsMidIteration) {
  // Iterate while a bulk load splits pages under the cursor. Every key
  // present at Seek time and never deleted must still be returned.
  const int kInitial = 200;
  for (int i = 0; i < kInitial; ++i) {
    std::string key = "k";
    key += OrderedKeyU64(i * 2);
    ASSERT_TRUE(tree_->Put(key, "v").ok());
  }
  BTree::Cursor cur = tree_->NewCursor();
  cur.SeekFirst();
  int seen = 0;
  int injected = 0;
  for (; cur.Valid(); cur.Next()) {
    if (seen % 10 == 0 && injected < 300) {
      // Odd keys sort between existing even ones, forcing splits.
      std::string key = "k";
      key += OrderedKeyU64(injected * 2 + 1);
      ASSERT_TRUE(tree_->Put(key, "v").ok());
      ++injected;
    }
    ++seen;
  }
  ASSERT_TRUE(cur.status().ok());
  // All initial keys plus any injected keys ahead of the scan point.
  EXPECT_GE(seen, kInitial);
}

TEST_F(BTreeCursorTest, CountRangeMatchesScan) {
  util::Rng rng(7);
  std::set<std::string> keys;
  for (int i = 0; i < 800; ++i) {
    std::string key = OrderedKeyU64(rng.Uniform(100000));
    ASSERT_TRUE(tree_->Put(key, "v").ok());
    keys.insert(key);
  }
  auto count_scan = [&](const std::string& lo, const std::string& hi) {
    uint64_t n = 0;
    for (const std::string& k : keys) {
      if (!lo.empty() && k < lo) continue;
      if (!hi.empty() && k >= hi) continue;
      ++n;
    }
    return n;
  };
  for (auto [lo, hi] : std::vector<std::pair<uint64_t, uint64_t>>{
           {0, 100000}, {500, 700}, {0, 1}, {99999, 100000}, {300, 300}}) {
    auto got = tree_->CountRange(OrderedKeyU64(lo), OrderedKeyU64(hi));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, count_scan(OrderedKeyU64(lo), OrderedKeyU64(hi)))
        << "range [" << lo << ", " << hi << ")";
  }
  auto all = tree_->CountRange({}, {});
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, keys.size());
}

// ------------------------------------------------------- Table cursor

struct TestRow {
  std::string name;
};

}  // namespace

template <>
struct RowCodec<TestRow> {
  static void Encode(const TestRow& row, util::Writer& w) {
    w.PutString(row.name);
  }
  static util::Result<TestRow> Decode(util::Reader& r) {
    TestRow row;
    row.name = std::string(r.ReadString());
    return row;
  }
};

namespace {

TEST_F(BTreeCursorTest, TableCursorSkipsMetaAndSeeks) {
  Table<TestRow> table(tree_.get());
  for (int i = 0; i < 20; ++i) {
    auto id = table.Insert(TestRow{"row" + std::to_string(i)});
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, static_cast<uint64_t>(i + 1));
  }
  // Full scan: ids 1..20, meta cell invisible.
  std::vector<uint64_t> ids;
  auto cur = table.Scan();
  for (; cur.Valid(); cur.Next()) {
    ids.push_back(cur.id());
    auto row = cur.row();
    ASSERT_TRUE(row.ok());
    EXPECT_EQ(row->name, "row" + std::to_string(cur.id() - 1));
  }
  ASSERT_TRUE(cur.status().ok());
  ASSERT_EQ(ids.size(), 20u);
  EXPECT_EQ(ids.front(), 1u);
  EXPECT_EQ(ids.back(), 20u);

  // Watermark-style seek.
  auto tail = table.Scan(/*min_id=*/15);
  std::vector<uint64_t> tail_ids;
  for (; tail.Valid(); tail.Next()) tail_ids.push_back(tail.id());
  EXPECT_EQ(tail_ids, (std::vector<uint64_t>{15, 16, 17, 18, 19, 20}));
}

}  // namespace
}  // namespace bp::storage

// ------------------------------------------------------ graph cursors

namespace bp::graph {
namespace {

class GraphCursorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage::DbOptions opts;
    opts.env = &env_;
    auto db = storage::Db::Open("graph.db", opts);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    auto store = GraphStore::Open(*db_, "g");
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
  }

  storage::MemEnv env_;
  std::unique_ptr<storage::Db> db_;
  std::unique_ptr<GraphStore> store_;
};

TEST_F(GraphCursorTest, EdgeCursorMatchesForEachOnRandomGraph) {
  util::Rng rng(2009);
  const int kNodes = 60;
  std::vector<NodeId> nodes;
  for (int i = 0; i < kNodes; ++i) {
    auto id = store_->AddNode(static_cast<uint32_t>(rng.Uniform(4)));
    ASSERT_TRUE(id.ok());
    nodes.push_back(*id);
  }
  for (int i = 0; i < 400; ++i) {
    NodeId src = nodes[rng.Uniform(kNodes)];
    NodeId dst = nodes[rng.Uniform(kNodes)];
    AttrMap attrs;
    attrs.SetInt("w", static_cast<int64_t>(i));
    ASSERT_TRUE(
        store_->AddEdge(src, dst, static_cast<uint32_t>(rng.Uniform(8)),
                        attrs)
            .ok());
  }

  for (NodeId node : nodes) {
    for (Direction dir : {Direction::kOut, Direction::kIn}) {
      // Reference enumeration via the deprecated callback wrapper.
      std::vector<Edge> expected;
      ASSERT_TRUE(store_
                      ->ForEachEdge(node, dir,
                                    [&](const Edge& e) {
                                      expected.push_back(e);
                                      return true;
                                    })
                      .ok());
      // Cursor enumeration with full materialization.
      QueryStats stats;
      std::vector<Edge> got;
      EdgeCursor cur = store_->Edges(node, dir, &stats);
      for (; cur.Valid(); cur.Next()) {
        EXPECT_EQ(cur.edge().neighbor(dir),
                  dir == Direction::kOut ? cur.edge().dst()
                                         : cur.edge().src());
        auto edge = cur.edge().Materialize();
        ASSERT_TRUE(edge.ok());
        got.push_back(*std::move(edge));
      }
      ASSERT_TRUE(cur.status().ok());

      ASSERT_EQ(got.size(), expected.size());
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, expected[i].id);
        EXPECT_EQ(got[i].src, expected[i].src);
        EXPECT_EQ(got[i].dst, expected[i].dst);
        EXPECT_EQ(got[i].kind, expected[i].kind);
        EXPECT_EQ(got[i].attrs.GetInt("w"), expected[i].attrs.GetInt("w"));
      }
      // Degree (cursor counting) agrees with both.
      auto degree = store_->Degree(node, dir);
      ASSERT_TRUE(degree.ok());
      EXPECT_EQ(*degree, got.size());
      // Stats counted the adjacency row + record per edge.
      EXPECT_EQ(stats.rows_scanned, 2 * got.size());
    }
  }
}

TEST_F(GraphCursorTest, FullScanCursorsMatchForEach) {
  util::Rng rng(7);
  std::vector<NodeId> nodes;
  for (int i = 0; i < 30; ++i) {
    auto id = store_->AddNode(1 + static_cast<uint32_t>(rng.Uniform(3)));
    ASSERT_TRUE(id.ok());
    nodes.push_back(*id);
  }
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store_
                    ->AddEdge(nodes[rng.Uniform(nodes.size())],
                              nodes[rng.Uniform(nodes.size())], 1)
                    .ok());
  }

  std::vector<NodeId> expected_nodes;
  ASSERT_TRUE(store_
                  ->ForEachNode([&](const Node& n) {
                    expected_nodes.push_back(n.id);
                    return true;
                  })
                  .ok());
  std::vector<NodeId> got_nodes;
  NodeCursor ncur = store_->Nodes();
  for (; ncur.Valid(); ncur.Next()) got_nodes.push_back(ncur.node().id());
  ASSERT_TRUE(ncur.status().ok());
  EXPECT_EQ(got_nodes, expected_nodes);

  std::vector<EdgeId> expected_edges;
  ASSERT_TRUE(store_
                  ->ForEachEdge([&](const Edge& e) {
                    expected_edges.push_back(e.id);
                    return true;
                  })
                  .ok());
  std::vector<EdgeId> got_edges;
  EdgeCursor ecur = store_->Edges();
  for (; ecur.Valid(); ecur.Next()) got_edges.push_back(ecur.edge().id());
  ASSERT_TRUE(ecur.status().ok());
  EXPECT_EQ(got_edges, expected_edges);
}

TEST_F(GraphCursorTest, EdgeDeletedBetweenSeekAndNext) {
  auto a = store_->AddNode(1);
  auto b = store_->AddNode(1);
  ASSERT_TRUE(a.ok() && b.ok());
  std::vector<EdgeId> edges;
  for (int i = 0; i < 5; ++i) {
    auto e = store_->AddEdge(*a, *b, static_cast<uint32_t>(i));
    ASSERT_TRUE(e.ok());
    edges.push_back(*e);
  }
  EdgeCursor cur = store_->Edges(*a, Direction::kOut);
  ASSERT_TRUE(cur.Valid());
  EXPECT_EQ(cur.edge().id(), edges[0]);
  // Delete the edge the cursor is on AND the one after it.
  ASSERT_TRUE(store_->DeleteEdge(edges[0]).ok());
  ASSERT_TRUE(store_->DeleteEdge(edges[1]).ok());
  cur.Next();
  ASSERT_TRUE(cur.Valid());
  EXPECT_EQ(cur.edge().id(), edges[2]);
  cur.Next();
  ASSERT_TRUE(cur.Valid());
  EXPECT_EQ(cur.edge().id(), edges[3]);
  cur.Next();
  ASSERT_TRUE(cur.Valid());
  EXPECT_EQ(cur.edge().id(), edges[4]);
  cur.Next();
  EXPECT_FALSE(cur.Valid());
  EXPECT_TRUE(cur.status().ok());

  auto degree = store_->Degree(*a, Direction::kOut);
  ASSERT_TRUE(degree.ok());
  EXPECT_EQ(*degree, 3u);
}

TEST_F(GraphCursorTest, LazyAttrsDecodeOnDemand) {
  auto a = store_->AddNode(1);
  auto b = store_->AddNode(2);
  ASSERT_TRUE(a.ok() && b.ok());
  AttrMap attrs;
  attrs.SetString("url", "http://example.com/");
  attrs.SetInt("time", 12345);
  auto e = store_->AddEdge(*a, *b, 7, attrs);
  ASSERT_TRUE(e.ok());

  EdgeCursor cur = store_->Edges(*a, Direction::kOut);
  ASSERT_TRUE(cur.Valid());
  EXPECT_EQ(cur.edge().id(), *e);
  EXPECT_EQ(cur.edge().src(), *a);
  EXPECT_EQ(cur.edge().dst(), *b);
  EXPECT_EQ(cur.edge().kind(), 7u);
  auto decoded = cur.edge().attrs();
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->StringOr("url", ""), "http://example.com/");
  EXPECT_EQ(decoded->IntOr("time", 0), 12345);

  auto node = store_->GetNodeRef(*b);
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(node->kind(), 2u);
}

}  // namespace
}  // namespace bp::graph
