// Unit tests for the storage engine: env, pager (transactions, crash
// recovery, freelist), btree basics, db catalog, typed tables, indexes.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "storage/btree.hpp"
#include "storage/db.hpp"
#include "storage/env.hpp"
#include "storage/pager.hpp"
#include "storage/table.hpp"
#include "util/serde.hpp"

namespace bp::storage {
namespace {

using util::OrderedKeyU64;
using util::Reader;
using util::Result;
using util::Status;
using util::Writer;

// ----------------------------------------------------------------- env

TEST(MemEnvTest, WriteReadRoundTrip) {
  MemEnv env;
  auto file = env.Open("f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Write(0, "hello world").ok());
  std::string out;
  ASSERT_TRUE((*file)->Read(6, 5, &out).ok());
  EXPECT_EQ(out, "world");
}

TEST(MemEnvTest, SharedContentAcrossHandles) {
  MemEnv env;
  auto a = env.Open("f");
  auto b = env.Open("f");
  ASSERT_TRUE((*a)->Write(0, "xyz").ok());
  std::string out;
  ASSERT_TRUE((*b)->Read(0, 3, &out).ok());
  EXPECT_EQ(out, "xyz");
}

TEST(MemEnvTest, ReadPastEofIsOutOfRange) {
  MemEnv env;
  auto file = env.Open("f");
  std::string out;
  EXPECT_EQ((*file)->Read(0, 1, &out).code(),
            util::StatusCode::kOutOfRange);
}

TEST(MemEnvTest, SnapshotRestore) {
  MemEnv env;
  auto file = env.Open("f");
  ASSERT_TRUE((*file)->Write(0, "before").ok());
  auto snap = env.SnapshotAll();
  ASSERT_TRUE((*file)->Write(0, "after!").ok());
  env.RestoreAll(snap);
  auto reopened = env.Open("f");
  std::string out;
  ASSERT_TRUE((*reopened)->Read(0, 6, &out).ok());
  EXPECT_EQ(out, "before");
}

TEST(MemEnvTest, RemoveAndExists) {
  MemEnv env;
  (void)env.Open("f");
  EXPECT_TRUE(env.Exists("f"));
  ASSERT_TRUE(env.Remove("f").ok());
  EXPECT_FALSE(env.Exists("f"));
}

TEST(MemEnvTest, SnapshotMidWriteRestoresExactPreWriteBytes) {
  // The WAL crash-injection property test depends on snapshots being
  // byte-exact: a snapshot taken between two writes of one logical
  // operation must restore to exactly the bytes the first write left.
  MemEnv env;
  auto file = env.Open("f");
  ASSERT_TRUE((*file)->Write(0, "aaaaaaaaaa").ok());
  ASSERT_TRUE((*file)->Write(4, "BB").ok());  // mid-file overwrite
  auto snap = env.SnapshotAll();

  // Whatever happens afterwards — more overwrites, truncation, removal
  // — restore must return the exact mid-write state.
  ASSERT_TRUE((*file)->Write(2, "zzzzzzzzzzzzzz").ok());
  ASSERT_TRUE((*file)->Truncate(3).ok());
  ASSERT_TRUE(env.Remove("f").ok());
  env.RestoreAll(snap);

  auto reopened = env.Open("f");
  auto size = (*reopened)->Size();
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 10u);
  std::string out;
  ASSERT_TRUE((*reopened)->Read(0, 10, &out).ok());
  EXPECT_EQ(out, "aaaaBBaaaa");
}

TEST(MemEnvTest, ShortReadMidFileIsIoErrorNotOutOfRange) {
  // File::Read contract (env.hpp): at-or-past EOF -> OutOfRange; a read
  // that STARTS in range but cannot be satisfied in full -> IoError.
  // WAL tail scanning relies on the distinction to classify torn frames.
  MemEnv env;
  auto file = env.Open("f");
  ASSERT_TRUE((*file)->Write(0, "0123456789").ok());
  std::string out;
  // Starts mid-file, runs past EOF: short read.
  EXPECT_EQ((*file)->Read(5, 10, &out).code(), util::StatusCode::kIoError);
  // Starts exactly at EOF: out of range.
  EXPECT_EQ((*file)->Read(10, 1, &out).code(),
            util::StatusCode::kOutOfRange);
  // Starts past EOF: out of range.
  EXPECT_EQ((*file)->Read(12, 1, &out).code(),
            util::StatusCode::kOutOfRange);
  // Exactly-at-boundary read succeeds.
  ASSERT_TRUE((*file)->Read(5, 5, &out).ok());
  EXPECT_EQ(out, "56789");
}

TEST(MemEnvTest, OpLogRecordsAndReplaysWriteSequence) {
  MemEnv env;
  auto file = env.Open("f");
  ASSERT_TRUE((*file)->Write(0, "base").ok());
  auto base = env.SnapshotAll();

  env.StartOpLog();
  ASSERT_TRUE((*file)->Write(4, "-one").ok());
  ASSERT_TRUE((*file)->Write(8, "-two").ok());
  ASSERT_TRUE((*file)->Truncate(10).ok());
  auto ops = env.StopOpLog();
  ASSERT_EQ(ops.size(), 3u);

  // Replaying a prefix reproduces the intermediate state...
  env.RestoreAll(base);
  ASSERT_TRUE(env.ApplyOps(ops, 1).ok());
  std::string out;
  auto f = env.Open("f");
  ASSERT_TRUE((*f)->Read(0, 8, &out).ok());
  EXPECT_EQ(out, "base-one");

  // ...and a torn final write applies only its leading bytes.
  env.RestoreAll(base);
  ASSERT_TRUE(env.ApplyOps(ops, 1, /*partial_bytes_of_last=*/2).ok());
  f = env.Open("f");
  ASSERT_TRUE((*f)->Read(0, 10, &out).ok());
  EXPECT_EQ(out, "base-one-t");
}

TEST(PosixEnvTest, ShortReadMidFileIsIoErrorNotOutOfRange) {
  // Same contract as MemEnv, against the real filesystem (a scratch
  // file in the test binary's working directory).
  Env* env = Env::Posix();
  const std::string path = "posix_env_short_read.tmp";
  auto file = env->Open(path);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Truncate(0).ok());
  ASSERT_TRUE((*file)->Write(0, "0123456789").ok());
  std::string out;
  EXPECT_EQ((*file)->Read(5, 10, &out).code(), util::StatusCode::kIoError);
  EXPECT_EQ((*file)->Read(10, 1, &out).code(),
            util::StatusCode::kOutOfRange);
  ASSERT_TRUE((*file)->Read(5, 5, &out).ok());
  EXPECT_EQ(out, "56789");
  ASSERT_TRUE(env->Remove(path).ok());
}

// --------------------------------------------------------------- pager

class PagerTest : public ::testing::Test {
 protected:
  std::unique_ptr<Pager> OpenPager() {
    PagerOptions opts;
    opts.env = &env_;
    auto pager = Pager::Open("db", opts);
    EXPECT_TRUE(pager.ok()) << pager.status().ToString();
    return std::move(*pager);
  }
  MemEnv env_;
};

TEST_F(PagerTest, FreshDbHasHeaderPage) {
  auto pager = OpenPager();
  EXPECT_EQ(pager->page_count(), 1u);
  EXPECT_EQ(pager->catalog_root(), kNoPage);
}

TEST_F(PagerTest, AllocateWriteCommitPersists) {
  {
    auto pager = OpenPager();
    ASSERT_TRUE(pager->Begin().ok());
    auto id = pager->Allocate();
    ASSERT_TRUE(id.ok());
    auto ref = pager->GetMutable(*id);
    ASSERT_TRUE(ref.ok());
    ref->mutable_data()[0] = 'Z';
    ASSERT_TRUE(pager->Commit().ok());
  }
  {
    auto pager = OpenPager();
    EXPECT_EQ(pager->page_count(), 2u);
    auto ref = pager->Get(1);
    ASSERT_TRUE(ref.ok());
    EXPECT_EQ(ref->data()[0], 'Z');
  }
}

TEST_F(PagerTest, RollbackRestoresPageAndHeader) {
  auto pager = OpenPager();
  ASSERT_TRUE(pager->Begin().ok());
  auto id = pager->Allocate();
  ASSERT_TRUE(id.ok());
  {
    auto ref = pager->GetMutable(*id);
    ref->mutable_data()[0] = 'A';
  }
  ASSERT_TRUE(pager->Commit().ok());

  ASSERT_TRUE(pager->Begin().ok());
  {
    auto ref = pager->GetMutable(*id);
    ref->mutable_data()[0] = 'B';
  }
  auto extra = pager->Allocate();
  ASSERT_TRUE(extra.ok());
  ASSERT_TRUE(pager->Rollback().ok());

  EXPECT_EQ(pager->page_count(), 2u);  // the extra page is gone
  auto ref = pager->Get(*id);
  EXPECT_EQ(ref->data()[0], 'A');
}

TEST_F(PagerTest, FreelistReusesPages) {
  auto pager = OpenPager();
  ASSERT_TRUE(pager->Begin().ok());
  auto a = pager->Allocate();
  auto b = pager->Allocate();
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(pager->Free(*a).ok());
  EXPECT_EQ(pager->freelist_length(), 1u);
  auto c = pager->Allocate();
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, *a);  // reused
  EXPECT_EQ(pager->freelist_length(), 0u);
  ASSERT_TRUE(pager->Commit().ok());
}

TEST_F(PagerTest, CrashAfterJournalSyncRecovers) {
  // Commit A durably; begin B, mutate, then crash mid-commit. Reopen must
  // roll back to state A.
  {
    auto pager = OpenPager();
    ASSERT_TRUE(pager->Begin().ok());
    auto id = pager->Allocate();
    ASSERT_TRUE(id.ok());
    {
      auto ref = pager->GetMutable(*id);
      ref->mutable_data()[0] = 'A';
    }
    ASSERT_TRUE(pager->Commit().ok());

    ASSERT_TRUE(pager->Begin().ok());
    {
      auto ref = pager->GetMutable(*id);
      ref->mutable_data()[0] = 'B';
    }
    pager->set_crash_after_journal_for_testing(true);
    EXPECT_EQ(pager->Commit().code(), util::StatusCode::kAborted);
    // Simulate the process dying: drop the pager without cleanup.
  }
  EXPECT_TRUE(env_.Exists("db.journal"));
  {
    auto pager = OpenPager();  // recovery runs here
    auto ref = pager->Get(1);
    ASSERT_TRUE(ref.ok());
    EXPECT_EQ(ref->data()[0], 'A');
    EXPECT_FALSE(env_.Exists("db.journal"));
  }
}

TEST_F(PagerTest, CrashMidDatabaseWriteRecovers) {
  // Take a filesystem snapshot right after a crash-marked commit (journal
  // synced, database partially written is the worst case we emulate by
  // writing garbage into the db file before reopening).
  auto pager = OpenPager();
  ASSERT_TRUE(pager->Begin().ok());
  auto id = pager->Allocate();
  ASSERT_TRUE(id.ok());
  {
    auto ref = pager->GetMutable(*id);
    ref->mutable_data()[0] = 'A';
  }
  ASSERT_TRUE(pager->Commit().ok());

  ASSERT_TRUE(pager->Begin().ok());
  {
    auto ref = pager->GetMutable(*id);
    ref->mutable_data()[0] = 'B';
  }
  pager->set_crash_after_journal_for_testing(true);
  EXPECT_EQ(pager->Commit().code(), util::StatusCode::kAborted);

  // Corrupt the committed page region, as if the crash interrupted the
  // database write halfway through.
  auto file = env_.Open("db");
  ASSERT_TRUE((*file)->Write(uint64_t{1} * kPageSize, "garbage!").ok());

  auto reopened = Pager::Open("db", [&] {
    PagerOptions o;
    o.env = &env_;
    return o;
  }());
  ASSERT_TRUE(reopened.ok());
  auto ref = (*reopened)->Get(1);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref->data()[0], 'A');
}

TEST_F(PagerTest, MutationOutsideTransactionThrows) {
  auto pager = OpenPager();
  EXPECT_THROW((void)pager->GetMutable(0), std::logic_error);
  EXPECT_THROW((void)pager->Allocate(), std::logic_error);
}

TEST_F(PagerTest, EvictionKeepsDataCorrect) {
  PagerOptions opts;
  opts.env = &env_;
  opts.cache_pages = 8;  // tiny cache to force eviction
  auto pager_or = Pager::Open("db", opts);
  ASSERT_TRUE(pager_or.ok());
  auto& pager = *pager_or;
  ASSERT_TRUE(pager->Begin().ok());
  std::vector<PageId> ids;
  for (int i = 0; i < 64; ++i) {
    auto id = pager->Allocate();
    ASSERT_TRUE(id.ok());
    auto ref = pager->GetMutable(*id);
    ref->mutable_data()[0] = static_cast<char>('a' + (i % 26));
    ids.push_back(*id);
  }
  ASSERT_TRUE(pager->Commit().ok());
  for (size_t i = 0; i < ids.size(); ++i) {
    auto ref = pager->Get(ids[i]);
    ASSERT_TRUE(ref.ok());
    EXPECT_EQ(ref->data()[0], static_cast<char>('a' + (i % 26)));
  }
  EXPECT_GT(pager->stats().evictions, 0u);
}

// --------------------------------------------------------------- btree

class BTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PagerOptions opts;
    opts.env = &env_;
    auto pager = Pager::Open("db", opts);
    ASSERT_TRUE(pager.ok());
    pager_ = std::move(*pager);
    ASSERT_TRUE(pager_->Begin().ok());
    auto root = BTree::Create(*pager_);
    ASSERT_TRUE(root.ok());
    ASSERT_TRUE(pager_->Commit().ok());
    tree_ = std::make_unique<BTree>(*pager_, *root);
  }

  MemEnv env_;
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BTree> tree_;
};

TEST_F(BTreeTest, PutGetSingle) {
  ASSERT_TRUE(tree_->Put("key", "value").ok());
  auto v = tree_->Get("key");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "value");
}

TEST_F(BTreeTest, GetMissingIsNotFound) {
  EXPECT_TRUE(tree_->Get("nope").status().IsNotFound());
  auto c = tree_->Contains("nope");
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(*c);
}

TEST_F(BTreeTest, PutReplacesValue) {
  ASSERT_TRUE(tree_->Put("k", "v1").ok());
  ASSERT_TRUE(tree_->Put("k", "v2").ok());
  EXPECT_EQ(*tree_->Get("k"), "v2");
  EXPECT_EQ(*tree_->Count(), 1u);
}

TEST_F(BTreeTest, DeleteRemovesKey) {
  ASSERT_TRUE(tree_->Put("k", "v").ok());
  ASSERT_TRUE(tree_->Delete("k").ok());
  EXPECT_TRUE(tree_->Get("k").status().IsNotFound());
  EXPECT_TRUE(tree_->Delete("k").IsNotFound());
}

TEST_F(BTreeTest, ManyKeysSplitAndRemainSorted) {
  const int kN = 2000;
  for (int i = 0; i < kN; ++i) {
    std::string key = OrderedKeyU64(static_cast<uint64_t>(i * 7 % kN));
    ASSERT_TRUE(tree_->Put(key, "v" + std::to_string(i)).ok());
  }
  // i*7 mod 2000 is not a permutation (gcd(7,2000)=1, it is); count once.
  EXPECT_EQ(*tree_->Count(), static_cast<uint64_t>(kN));
  std::string prev;
  uint64_t seen = 0;
  ASSERT_TRUE(tree_
                  ->ForEach([&](std::string_view key, std::string_view) {
                    if (seen > 0) {
                      EXPECT_LT(prev, key);
                    }
                    prev = std::string(key);
                    ++seen;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(seen, static_cast<uint64_t>(kN));
  auto stats = tree_->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->depth, 1u);  // must have split
}

TEST_F(BTreeTest, LargeValuesUseOverflowPages) {
  std::string big(100000, 'x');
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>('a' + (i % 26));
  }
  ASSERT_TRUE(tree_->Put("big", big).ok());
  auto v = tree_->Get("big");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, big);
  auto stats = tree_->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->overflow_pages, 20u);
  EXPECT_EQ(stats->value_bytes, big.size());

  // Replacing with a small value must free the chain.
  ASSERT_TRUE(tree_->Put("big", "small").ok());
  stats = tree_->Stats();
  EXPECT_EQ(stats->overflow_pages, 0u);
  EXPECT_GT(pager_->freelist_length(), 20u);
}

TEST_F(BTreeTest, RangeScan) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        tree_->Put(OrderedKeyU64(static_cast<uint64_t>(i)), "v").ok());
  }
  int count = 0;
  ASSERT_TRUE(tree_
                  ->ForEachRange(OrderedKeyU64(10), OrderedKeyU64(20),
                                 [&](std::string_view key, std::string_view) {
                                   uint64_t id = util::DecodeOrderedKeyU64(key);
                                   EXPECT_GE(id, 10u);
                                   EXPECT_LT(id, 20u);
                                   ++count;
                                   return true;
                                 })
                  .ok());
  EXPECT_EQ(count, 10);
}

TEST_F(BTreeTest, PrefixScan) {
  ASSERT_TRUE(tree_->Put("app", "1").ok());
  ASSERT_TRUE(tree_->Put("apple", "2").ok());
  ASSERT_TRUE(tree_->Put("applesauce", "3").ok());
  ASSERT_TRUE(tree_->Put("banana", "4").ok());
  std::vector<std::string> keys;
  ASSERT_TRUE(tree_
                  ->ForEachPrefix("apple",
                                  [&](std::string_view key, std::string_view) {
                                    keys.emplace_back(key);
                                    return true;
                                  })
                  .ok());
  EXPECT_EQ(keys, (std::vector<std::string>{"apple", "applesauce"}));
}

TEST_F(BTreeTest, EarlyStopScan) {
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        tree_->Put(OrderedKeyU64(static_cast<uint64_t>(i)), "v").ok());
  }
  int count = 0;
  ASSERT_TRUE(tree_
                  ->ForEach([&](std::string_view, std::string_view) {
                    return ++count < 5;
                  })
                  .ok());
  EXPECT_EQ(count, 5);
}

TEST_F(BTreeTest, DeleteAllKeysLeavesEmptyTree) {
  const int kN = 1200;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(tree_
                    ->Put(OrderedKeyU64(static_cast<uint64_t>(i)),
                          std::string(64, 'v'))
                    .ok());
  }
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(
        tree_->Delete(OrderedKeyU64(static_cast<uint64_t>(i))).ok())
        << "delete " << i;
  }
  EXPECT_EQ(*tree_->Count(), 0u);
  // Pages from emptied leaves should be back on the freelist.
  EXPECT_GT(pager_->freelist_length(), 0u);
  // Tree must still accept inserts.
  ASSERT_TRUE(tree_->Put("again", "works").ok());
  EXPECT_EQ(*tree_->Get("again"), "works");
}

TEST_F(BTreeTest, PersistsAcrossReopen) {
  PageId root = tree_->root();
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree_
                    ->Put("key" + std::to_string(i),
                          "value" + std::to_string(i))
                    .ok());
  }
  tree_.reset();
  pager_.reset();

  PagerOptions opts;
  opts.env = &env_;
  auto pager = Pager::Open("db", opts);
  ASSERT_TRUE(pager.ok());
  BTree tree(**pager, root);
  for (int i = 0; i < 500; ++i) {
    auto v = tree.Get("key" + std::to_string(i));
    ASSERT_TRUE(v.ok()) << i;
    EXPECT_EQ(*v, "value" + std::to_string(i));
  }
}

TEST_F(BTreeTest, RejectsInvalidKeys) {
  EXPECT_THROW((void)tree_->Put("", "v"), std::logic_error);
  EXPECT_THROW((void)tree_->Put(std::string(kMaxKeySize + 1, 'k'), "v"),
               std::logic_error);
}

TEST_F(BTreeTest, FreeAllPagesReturnsSpace) {
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(tree_
                    ->Put(OrderedKeyU64(static_cast<uint64_t>(i)),
                          std::string(100, 'x'))
                    .ok());
  }
  uint32_t pages_before_free = pager_->page_count();
  ASSERT_TRUE(tree_->FreeAllPages().ok());
  // All tree pages (including the root) are on the freelist now.
  EXPECT_EQ(pager_->freelist_length() + 1, pages_before_free);
}

// ------------------------------------------------------------------ db

TEST(DbTest, CreateOpenRoundTrip) {
  MemEnv env;
  DbOptions opts;
  opts.env = &env;
  auto db = Db::Open("test.db", opts);
  ASSERT_TRUE(db.ok());
  auto tree = (*db)->CreateTree("mytree");
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE((*tree)->Put("k", "v").ok());

  EXPECT_TRUE((*db)->CreateTree("mytree").status().code() ==
              util::StatusCode::kAlreadyExists);

  auto again = (*db)->OpenTree("mytree");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*tree, *again);  // same handle
  EXPECT_TRUE((*db)->OpenTree("missing").status().IsNotFound());
}

TEST(DbTest, TreesSurviveReopen) {
  MemEnv env;
  DbOptions opts;
  opts.env = &env;
  {
    auto db = Db::Open("test.db", opts);
    ASSERT_TRUE(db.ok());
    auto tree = (*db)->CreateTree("t1");
    ASSERT_TRUE(tree.ok());
    ASSERT_TRUE((*tree)->Put("persist", "yes").ok());
  }
  {
    auto db = Db::Open("test.db", opts);
    ASSERT_TRUE(db.ok());
    auto tree = (*db)->OpenTree("t1");
    ASSERT_TRUE(tree.ok());
    EXPECT_EQ(*(*tree)->Get("persist"), "yes");
  }
}

TEST(DbTest, ListAndDropTrees) {
  MemEnv env;
  DbOptions opts;
  opts.env = &env;
  auto db = Db::Open("test.db", opts);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->CreateTree("b").ok());
  ASSERT_TRUE((*db)->CreateTree("a").ok());
  auto names = (*db)->ListTrees();
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, (std::vector<std::string>{"a", "b"}));

  ASSERT_TRUE((*db)->DropTree("a").ok());
  names = (*db)->ListTrees();
  EXPECT_EQ(*names, (std::vector<std::string>{"b"}));
  EXPECT_TRUE((*db)->OpenTree("a").status().IsNotFound());
}

TEST(DbTest, MultiTreeTransactionIsAtomic) {
  MemEnv env;
  DbOptions opts;
  opts.env = &env;
  auto db = Db::Open("test.db", opts);
  ASSERT_TRUE(db.ok());
  auto t1 = (*db)->CreateTree("t1");
  auto t2 = (*db)->CreateTree("t2");
  ASSERT_TRUE(t1.ok() && t2.ok());

  ASSERT_TRUE((*db)->Begin().ok());
  ASSERT_TRUE((*t1)->Put("a", "1").ok());
  ASSERT_TRUE((*t2)->Put("b", "2").ok());
  ASSERT_TRUE((*db)->Rollback().ok());

  EXPECT_TRUE((*t1)->Get("a").status().IsNotFound());
  EXPECT_TRUE((*t2)->Get("b").status().IsNotFound());

  ASSERT_TRUE((*db)->Begin().ok());
  ASSERT_TRUE((*t1)->Put("a", "1").ok());
  ASSERT_TRUE((*t2)->Put("b", "2").ok());
  ASSERT_TRUE((*db)->Commit().ok());
  EXPECT_EQ(*(*t1)->Get("a"), "1");
  EXPECT_EQ(*(*t2)->Get("b"), "2");
}

TEST(DbTest, SpaceReportCoversTrees) {
  MemEnv env;
  DbOptions opts;
  opts.env = &env;
  auto db = Db::Open("test.db", opts);
  ASSERT_TRUE(db.ok());
  auto t1 = (*db)->CreateTree("places.visits");
  auto t2 = (*db)->CreateTree("prov.nodes");
  ASSERT_TRUE(t1.ok() && t2.ok());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(
        (*t1)->Put(OrderedKeyU64(static_cast<uint64_t>(i)), "visit").ok());
    ASSERT_TRUE((*t2)
                    ->Put(OrderedKeyU64(static_cast<uint64_t>(i)),
                          "node-with-longer-payload")
                    .ok());
  }
  auto space = (*db)->Space();
  ASSERT_TRUE(space.ok());
  EXPECT_EQ(space->trees.size(), 2u);
  EXPECT_GT(space->BytesForPrefix("places."), 0u);
  EXPECT_GT(space->BytesForPrefix("prov."), 0u);
  EXPECT_EQ(space->BytesForPrefix("nothing."), 0u);
  EXPECT_GE(space->file_bytes,
            space->BytesForPrefix("places.") + space->BytesForPrefix("prov."));
}

TEST(DbTest, CompressedCheckpointSurvivesReopenAndModeSwitch) {
  // The storage diet's durability contract: pages compressed into
  // checkpoint slots must read back exactly across reopen — including a
  // reopen with compression OFF, because frames are self-describing
  // (the read path never consults the knob to decode).
  MemEnv env;
  DbOptions opts;
  opts.env = &env;
  opts.durability = DurabilityMode::kWal;
  opts.compression.mode = compress::CompressionOptions::Mode::kFast;

  std::map<std::string, std::string> model;
  uint64_t logical_bytes = 0;
  uint64_t disk_bytes = 0;
  {
    auto db = Db::Open("c.db", opts);
    ASSERT_TRUE(db.ok());
    auto tree = (*db)->CreateTree("t");
    ASSERT_TRUE(tree.ok());
    for (int i = 0; i < 400; ++i) {
      std::string key = OrderedKeyU64(static_cast<uint64_t>(i));
      std::string value = "https://example.com/articles/" +
                          std::to_string(i % 13) + "/page?visit=" +
                          std::to_string(i) + std::string(64, 'p');
      ASSERT_TRUE((*tree)->Put(key, value).ok());
      model[key] = value;
    }
    ASSERT_TRUE((*db)->pager().Checkpoint().ok());
    PagerStats stats = (*db)->pager().stats();
    EXPECT_GT(stats.compressed_pages, 0u);
    EXPECT_LT(stats.compressed_bytes, stats.compressible_raw_bytes);
    auto space = (*db)->Space();
    ASSERT_TRUE(space.ok());
    ASSERT_EQ(space->trees.size(), 1u);
    logical_bytes = space->trees[0].stats.TotalBytes();
    disk_bytes = space->trees[0].stats.disk_bytes;
    EXPECT_LT(disk_bytes, logical_bytes)
        << "compressed slots must shrink the physical footprint";
  }

  // Reopen with compression off: every compressed slot must still
  // decode, and new checkpoints simply write raw slots alongside.
  opts.compression.mode = compress::CompressionOptions::Mode::kOff;
  {
    auto db = Db::Open("c.db", opts);
    ASSERT_TRUE(db.ok());
    auto tree = (*db)->OpenTree("t");
    ASSERT_TRUE(tree.ok());
    for (const auto& [key, value] : model) {
      auto got = (*tree)->Get(key);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(*got, value);
    }
    EXPECT_GT((*db)->pager().stats().decompress_reads, 0u)
        << "reads of compressed slots must be visible in the stats";
    // Mutate and fold again with the diet off: mixed raw/compressed
    // slots in one file.
    std::string extra_key = OrderedKeyU64(uint64_t{10'000});
    ASSERT_TRUE((*tree)->Put(extra_key, std::string(200, 'z')).ok());
    model[extra_key] = std::string(200, 'z');
    ASSERT_TRUE((*db)->pager().Checkpoint().ok());
  }
  {
    auto db = Db::Open("c.db", opts);
    ASSERT_TRUE(db.ok());
    auto tree = (*db)->OpenTree("t");
    ASSERT_TRUE(tree.ok());
    for (const auto& [key, value] : model) {
      auto got = (*tree)->Get(key);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(*got, value);
    }
  }
}

// --------------------------------------------------------------- table

struct TestRow {
  std::string name;
  int64_t score = 0;
};

}  // namespace

template <>
struct RowCodec<TestRow> {
  static void Encode(const TestRow& row, util::Writer& w) {
    w.PutString(row.name);
    w.PutSignedVarint64(row.score);
  }
  static util::Result<TestRow> Decode(util::Reader& r) {
    TestRow row;
    row.name = std::string(r.ReadString());
    row.score = r.ReadSignedVarint64();
    return row;
  }
};

namespace {

class TableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DbOptions opts;
    opts.env = &env_;
    auto db = Db::Open("test.db", opts);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    auto tree = db_->CreateTree("rows");
    ASSERT_TRUE(tree.ok());
    table_ = std::make_unique<Table<TestRow>>(*tree);
  }

  MemEnv env_;
  std::unique_ptr<Db> db_;
  std::unique_ptr<Table<TestRow>> table_;
};

TEST_F(TableTest, InsertAssignsSequentialIds) {
  auto id1 = table_->Insert({"alice", 10});
  auto id2 = table_->Insert({"bob", 20});
  ASSERT_TRUE(id1.ok() && id2.ok());
  EXPECT_EQ(*id1, 1u);
  EXPECT_EQ(*id2, 2u);
  EXPECT_EQ(table_->Get(1)->name, "alice");
  EXPECT_EQ(table_->Get(2)->score, 20);
}

TEST_F(TableTest, CountExcludesAllocatorCell) {
  EXPECT_EQ(*table_->Count(), 0u);
  ASSERT_TRUE(table_->Insert({"x", 1}).ok());
  EXPECT_EQ(*table_->Count(), 1u);
}

TEST_F(TableTest, DeleteDoesNotReuseIds) {
  ASSERT_TRUE(table_->Insert({"a", 1}).ok());
  ASSERT_TRUE(table_->Delete(1).ok());
  auto id = table_->Insert({"b", 2});
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 2u);
  EXPECT_TRUE(table_->Get(1).status().IsNotFound());
}

TEST_F(TableTest, ForEachVisitsInIdOrder) {
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(table_->Insert({"n" + std::to_string(i), i}).ok());
  }
  uint64_t expected = 1;
  ASSERT_TRUE(table_
                  ->ForEach([&](uint64_t id, const TestRow& row) {
                    EXPECT_EQ(id, expected);
                    EXPECT_EQ(row.score, static_cast<int64_t>(expected - 1));
                    ++expected;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(expected, 51u);
}

TEST_F(TableTest, RejectsReservedId) {
  EXPECT_THROW((void)table_->Put(0, {"zero", 0}), std::logic_error);
}

// --------------------------------------------------------------- index

class IndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DbOptions opts;
    opts.env = &env_;
    auto db = Db::Open("test.db", opts);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    auto tree = db_->CreateTree("idx");
    ASSERT_TRUE(tree.ok());
    index_ = std::make_unique<Index>(*tree);
  }

  std::vector<uint64_t> Lookup(std::string_view key) {
    std::vector<uint64_t> ids;
    EXPECT_TRUE(index_
                    ->ForEachEqual(key,
                                   [&](uint64_t id) {
                                     ids.push_back(id);
                                     return true;
                                   })
                    .ok());
    return ids;
  }

  MemEnv env_;
  std::unique_ptr<Db> db_;
  std::unique_ptr<Index> index_;
};

TEST_F(IndexTest, MultiMapSemantics) {
  ASSERT_TRUE(index_->Add("wine", 3).ok());
  ASSERT_TRUE(index_->Add("wine", 1).ok());
  ASSERT_TRUE(index_->Add("water", 2).ok());
  EXPECT_EQ(Lookup("wine"), (std::vector<uint64_t>{1, 3}));
  EXPECT_EQ(Lookup("water"), (std::vector<uint64_t>{2}));
  EXPECT_EQ(Lookup("beer"), (std::vector<uint64_t>{}));
}

TEST_F(IndexTest, ExactMatchDoesNotBleedIntoLongerKeys) {
  ASSERT_TRUE(index_->Add("win", 1).ok());
  ASSERT_TRUE(index_->Add("wine", 2).ok());
  EXPECT_EQ(Lookup("win"), (std::vector<uint64_t>{1}));
}

TEST_F(IndexTest, RemoveSpecificEntry) {
  ASSERT_TRUE(index_->Add("k", 1).ok());
  ASSERT_TRUE(index_->Add("k", 2).ok());
  ASSERT_TRUE(index_->Remove("k", 1).ok());
  EXPECT_EQ(Lookup("k"), (std::vector<uint64_t>{2}));
  EXPECT_TRUE(index_->Remove("k", 99).IsNotFound());
}

TEST_F(IndexTest, PrefixIterationYieldsKeysAndIds) {
  ASSERT_TRUE(index_->Add("apple", 1).ok());
  ASSERT_TRUE(index_->Add("apricot", 2).ok());
  ASSERT_TRUE(index_->Add("banana", 3).ok());
  std::vector<std::pair<std::string, uint64_t>> got;
  ASSERT_TRUE(index_
                  ->ForEachPrefix("ap",
                                  [&](std::string_view key, uint64_t id) {
                                    got.emplace_back(std::string(key), id);
                                    return true;
                                  })
                  .ok());
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], (std::pair<std::string, uint64_t>{"apple", 1}));
  EXPECT_EQ(got[1], (std::pair<std::string, uint64_t>{"apricot", 2}));
}

TEST_F(IndexTest, RejectsNulInKeys) {
  EXPECT_THROW((void)index_->Add(std::string("a\0b", 3), 1),
               std::logic_error);
}

}  // namespace
}  // namespace bp::storage
