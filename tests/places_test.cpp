// Tests for the Places baseline: schema semantics, Firefox-style
// lossiness, frecency, and autocomplete.
#include <gtest/gtest.h>

#include "places/places.hpp"
#include "storage/env.hpp"
#include "util/time.hpp"

namespace bp::places {
namespace {

using storage::DbOptions;
using storage::MemEnv;
using util::Days;
using util::TimeMs;

class PlacesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DbOptions opts;
    opts.env = &env_;
    auto db = storage::Db::Open("p.db", opts);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    auto store = PlacesStore::Open(*db_);
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
  }

  MemEnv env_;
  std::unique_ptr<storage::Db> db_;
  std::unique_ptr<PlacesStore> store_;
};

TEST_F(PlacesTest, VisitUpsertsPlace) {
  auto v1 = store_->AddVisit("http://a", "Page A", VisitType::kLink, 0, 100);
  ASSERT_TRUE(v1.ok());
  auto v2 =
      store_->AddVisit("http://a", "Page A v2", VisitType::kLink, *v1, 200);
  ASSERT_TRUE(v2.ok());

  auto place_id = store_->PlaceIdForUrl("http://a");
  ASSERT_TRUE(place_id.ok());
  auto place = store_->GetPlace(*place_id);
  ASSERT_TRUE(place.ok());
  EXPECT_EQ(place->visit_count, 2);
  EXPECT_EQ(place->title, "Page A v2");
  EXPECT_EQ(place->last_visit, 200);
  EXPECT_EQ(*store_->PlaceCount(), 1u);
  EXPECT_EQ(*store_->VisitCount(), 2u);
}

TEST_F(PlacesTest, FromVisitChainRecorded) {
  auto v1 = store_->AddVisit("http://a", "A", VisitType::kTyped, 0, 100);
  auto v2 = store_->AddVisit("http://b", "B", VisitType::kLink, *v1, 200);
  ASSERT_TRUE(v2.ok());
  auto visit = store_->GetVisit(*v2);
  ASSERT_TRUE(visit.ok());
  EXPECT_EQ(visit->from_visit, *v1);
  EXPECT_EQ(visit->type, VisitType::kLink);
}

TEST_F(PlacesTest, TypedFlagSticks) {
  ASSERT_TRUE(store_->AddVisit("http://a", "A", VisitType::kLink, 0, 1).ok());
  ASSERT_TRUE(
      store_->AddVisit("http://a", "A", VisitType::kTyped, 0, 2).ok());
  ASSERT_TRUE(store_->AddVisit("http://a", "A", VisitType::kLink, 0, 3).ok());
  auto place = store_->GetPlace(*store_->PlaceIdForUrl("http://a"));
  EXPECT_TRUE(place->typed);
}

TEST_F(PlacesTest, EmbedAndRedirectPlacesAreHidden) {
  ASSERT_TRUE(
      store_->AddVisit("http://img", "", VisitType::kEmbed, 0, 1).ok());
  auto place = store_->GetPlace(*store_->PlaceIdForUrl("http://img"));
  EXPECT_TRUE(place->hidden);
  // A later top-level visit unhides.
  ASSERT_TRUE(
      store_->AddVisit("http://img", "Gallery", VisitType::kLink, 0, 2).ok());
  place = store_->GetPlace(*store_->PlaceIdForUrl("http://img"));
  EXPECT_FALSE(place->hidden);
}

TEST_F(PlacesTest, BookmarkWithoutVisitCreatesZeroVisitPlace) {
  auto id = store_->AddBookmark("http://saved", "Saved", 50);
  ASSERT_TRUE(id.ok());
  auto place = store_->GetPlace(*store_->PlaceIdForUrl("http://saved"));
  ASSERT_TRUE(place.ok());
  EXPECT_EQ(place->visit_count, 0);
  int bookmarks = 0;
  ASSERT_TRUE(store_
                  ->ForEachBookmark([&](uint64_t, const BookmarkRow& row) {
                    EXPECT_EQ(row.title, "Saved");
                    ++bookmarks;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(bookmarks, 1);
}

TEST_F(PlacesTest, InputHistoryCountsUses) {
  ASSERT_TRUE(store_->AddInput("rosebud", 10).ok());
  ASSERT_TRUE(store_->AddInput("rosebud", 20).ok());
  ASSERT_TRUE(store_->AddInput("wine", 30).ok());
  int rows = 0;
  int64_t rosebud_uses = 0;
  TimeMs rosebud_last = 0;
  ASSERT_TRUE(store_
                  ->ForEachInput([&](uint64_t, const InputRow& row) {
                    ++rows;
                    if (row.input == "rosebud") {
                      rosebud_uses = row.use_count;
                      rosebud_last = row.last_used;
                    }
                    return true;
                  })
                  .ok());
  EXPECT_EQ(rows, 2);  // deduplicated by input string
  EXPECT_EQ(rosebud_uses, 2);
  EXPECT_EQ(rosebud_last, 20);
}

TEST_F(PlacesTest, DownloadLinksToKnownPlace) {
  auto v = store_->AddVisit("http://host/dl", "Downloads",
                            VisitType::kLink, 0, 5);
  ASSERT_TRUE(v.ok());
  auto d = store_->AddDownload("http://host/dl", "/tmp/file.zip", 10);
  ASSERT_TRUE(d.ok());
  int seen = 0;
  ASSERT_TRUE(store_
                  ->ForEachDownload([&](uint64_t, const DownloadRow& row) {
                    EXPECT_EQ(row.place_id,
                              *store_->PlaceIdForUrl("http://host/dl"));
                    EXPECT_EQ(row.target_path, "/tmp/file.zip");
                    ++seen;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(seen, 1);
}

TEST_F(PlacesTest, DownloadFromUnknownSourceHasNoPlace) {
  ASSERT_TRUE(store_->AddDownload("http://nowhere/f.bin", "/tmp/f", 1).ok());
  ASSERT_TRUE(store_
                  ->ForEachDownload([&](uint64_t, const DownloadRow& row) {
                    EXPECT_EQ(row.place_id, 0u);
                    return true;
                  })
                  .ok());
}

TEST_F(PlacesTest, FrecencyPrefersRecentTypedAndFrequent) {
  TimeMs now = Days(100);
  // Old, once-visited link page.
  ASSERT_TRUE(
      store_->AddVisit("http://old", "old", VisitType::kLink, 0, Days(1))
          .ok());
  // Recent typed page, visited often.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(store_
                    ->AddVisit("http://hot", "hot", VisitType::kTyped, 0,
                               Days(99) + i)
                    .ok());
  }
  // Redirect-only page: zero bonus.
  ASSERT_TRUE(store_
                  ->AddVisit("http://redir", "", VisitType::kRedirectTemporary,
                             0, Days(99))
                  .ok());

  auto old_f = store_->Frecency(*store_->PlaceIdForUrl("http://old"), now);
  auto hot_f = store_->Frecency(*store_->PlaceIdForUrl("http://hot"), now);
  auto red_f = store_->Frecency(*store_->PlaceIdForUrl("http://redir"), now);
  ASSERT_TRUE(old_f.ok() && hot_f.ok() && red_f.ok());
  EXPECT_GT(*hot_f, *old_f);
  EXPECT_EQ(*red_f, 0.0);
}

TEST_F(PlacesTest, AutocompleteMatchesAllTokensRankedByFrecency) {
  TimeMs now = Days(10);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(store_
                    ->AddVisit("http://wine-shop.example/cellar",
                               "wine cellar catalog", VisitType::kTyped, 0,
                               Days(9) + i)
                    .ok());
  }
  ASSERT_TRUE(store_
                  ->AddVisit("http://wine-blog.example/notes",
                             "wine tasting notes", VisitType::kLink, 0,
                             Days(2))
                  .ok());
  ASSERT_TRUE(store_
                  ->AddVisit("http://beer.example", "beer reviews",
                             VisitType::kLink, 0, Days(9))
                  .ok());

  auto results = store_->AutocompleteSearch("wine", 10, now);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 2u);
  EXPECT_EQ((*results)[0].place.url, "http://wine-shop.example/cellar");

  // Multi-token: all tokens must match.
  results = store_->AutocompleteSearch("wine notes", 10, now);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0].place.url, "http://wine-blog.example/notes");

  // Hidden (redirect/embed) places never autocomplete.
  ASSERT_TRUE(store_
                  ->AddVisit("http://wine-tracker.example/r",
                             "wine wine wine", VisitType::kEmbed, 0, Days(9))
                  .ok());
  results = store_->AutocompleteSearch("wine", 10, now);
  EXPECT_EQ(results->size(), 2u);
}

TEST_F(PlacesTest, VisitsForPlaceReturnsAllInOrder) {
  auto v1 = store_->AddVisit("http://a", "A", VisitType::kLink, 0, 1);
  ASSERT_TRUE(store_->AddVisit("http://b", "B", VisitType::kLink, 0, 2).ok());
  auto v3 = store_->AddVisit("http://a", "A", VisitType::kLink, 0, 3);
  auto visits = store_->VisitsForPlace(*store_->PlaceIdForUrl("http://a"));
  ASSERT_TRUE(visits.ok());
  EXPECT_EQ(*visits, (std::vector<uint64_t>{*v1, *v3}));
}

}  // namespace
}  // namespace bp::places
