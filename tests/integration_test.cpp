// End-to-end integration: a multi-day simulated browsing stream ingested
// into both schemas in one database, queried by all four use cases, with
// invariants checked and persistence verified across reopen.
#include <gtest/gtest.h>

#include <algorithm>

#include "capture/bus.hpp"
#include "capture/recorders.hpp"
#include "search/history_search.hpp"
#include "search/lineage.hpp"
#include "search/personalize.hpp"
#include "search/time_context.hpp"
#include "sim/browser.hpp"
#include "sim/scenario.hpp"
#include "storage/env.hpp"

namespace bp {
namespace {

using capture::EventBus;
using capture::PlacesRecorder;
using capture::ProvenanceRecorder;
using storage::DbOptions;
using storage::MemEnv;

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Rng rng(5);
    vocab_ = sim::Vocabulary::Create(rng, {});
    sim::WebConfig web_config;
    web_config.sites_per_topic = 3;
    web_config.pages_per_site = 25;
    web_ = sim::WebGraph::Generate(rng, web_config, vocab_);

    sim::UserConfig user;
    user.seed = 11;
    user.days = 12;
    out_ = sim::BrowserSim(web_, user).Run();

    DbOptions opts;
    opts.env = &env_;
    opts.sync = false;
    auto db = storage::Db::Open("world.db", opts);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    auto places = places::PlacesStore::Open(*db_);
    ASSERT_TRUE(places.ok());
    places_ = std::move(*places);
    auto prov = prov::ProvStore::Open(*db_, {});
    ASSERT_TRUE(prov.ok());
    prov_ = std::move(*prov);

    places_recorder_ = std::make_unique<PlacesRecorder>(*places_);
    prov_recorder_ = std::make_unique<ProvenanceRecorder>(*prov_);
    EventBus bus;
    bus.Subscribe(places_recorder_.get());
    bus.Subscribe(prov_recorder_.get());
    ASSERT_TRUE(bus.PublishAll(out_.events).ok());

    auto searcher = search::HistorySearcher::Open(*db_, *prov_);
    ASSERT_TRUE(searcher.ok());
    searcher_ = std::move(*searcher);
  }

  MemEnv env_;
  sim::Vocabulary vocab_;
  sim::WebGraph web_;
  sim::SimOutput out_;
  std::unique_ptr<storage::Db> db_;
  std::unique_ptr<places::PlacesStore> places_;
  std::unique_ptr<prov::ProvStore> prov_;
  std::unique_ptr<PlacesRecorder> places_recorder_;
  std::unique_ptr<ProvenanceRecorder> prov_recorder_;
  std::unique_ptr<search::HistorySearcher> searcher_;
};

TEST_F(IntegrationTest, BothSchemasAgreeOnVisitVolume) {
  EXPECT_EQ(*places_->VisitCount(), out_.total_visits);
  // Provenance has at least one node per visit plus canonical pages.
  EXPECT_GT(*prov_->NodeCount(), out_.total_visits);
  auto invariants = prov_->CheckInvariants();
  ASSERT_TRUE(invariants.ok());
  EXPECT_TRUE(*invariants);
}

TEST_F(IntegrationTest, SpaceReportSeparatesSchemas) {
  auto space = db_->Space();
  ASSERT_TRUE(space.ok());
  uint64_t places_bytes = space->BytesForPrefix("places.");
  uint64_t prov_bytes = space->BytesForPrefix("prov.");
  EXPECT_GT(places_bytes, 0u);
  EXPECT_GT(prov_bytes, 0u);
  // Overhead is a finite multiple, not an explosion (paper: 39.5%).
  EXPECT_LT(prov_bytes, places_bytes * 6);
}

TEST_F(IntegrationTest, StorageOverheadDecomposition) {
  // Regression pin for bench_storage_overhead's replace_overhead_pct
  // exceeding the paper's 39.5% (often > 100%): the excess comes from
  // the access-path indexes (prov.in / prov.out adjacency postings,
  // prov.url_index) that store each edge and node key redundantly so
  // traces run without scans — the paper's SQLite schema reused Places'
  // own indexes and counted none of that. Two bounds pin the
  // explanation: the CORE graph data (nodes + edges) must stay the same
  // order as the Places baseline (node versioning makes the exact ratio
  // config-dependent, but a blow-up means the schema itself bloated),
  // and the indexes must be a major share of the prov footprint (if
  // they ever shrink to noise while the overhead stays > 100%, the
  // bench's explanation is no longer true).
  auto space = db_->Space();
  ASSERT_TRUE(space.ok());
  const uint64_t places_bytes = space->BytesForPrefix("places.");
  const uint64_t prov_bytes = space->BytesForPrefix("prov.");
  const uint64_t core_bytes = space->BytesForPrefix("prov.nodes") +
                              space->BytesForPrefix("prov.edges");
  const uint64_t index_bytes = prov_bytes - core_bytes;
  ASSERT_GT(core_bytes, 0u);
  EXPECT_LT(core_bytes, places_bytes * 2)
      << "core graph (nodes+edges) must stay the same order as Places";
  EXPECT_GT(index_bytes, core_bytes / 2)
      << "the access-path indexes are where the overhead lives";
}

TEST_F(IntegrationTest, ContextualBeatsTextualOnEpisodes) {
  // Over the sim's own search episodes, provenance reranking must place
  // the clicked page at least as well as plain text search, on average.
  double text_rr = 0, prov_rr = 0;
  int evaluated = 0;
  for (const sim::SearchEpisode& episode : out_.searches) {
    if (episode.clicked_visit == 0) continue;
    if (++evaluated > 25) break;
    auto textual = searcher_->TextualSearch(episode.query, 10);
    auto contextual = searcher_->ContextualSearch(episode.query, {});
    ASSERT_TRUE(textual.ok() && contextual.ok());
    auto rank_of = [](const std::vector<search::RankedPage>& pages,
                      const std::string& url) -> double {
      for (size_t i = 0; i < pages.size(); ++i) {
        if (pages[i].url == url) return 1.0 / static_cast<double>(i + 1);
      }
      return 0.0;
    };
    text_rr += rank_of(textual->pages, episode.clicked_url);
    prov_rr += rank_of(contextual->pages, episode.clicked_url);
  }
  ASSERT_GT(evaluated, 5);
  EXPECT_GE(prov_rr, text_rr * 0.95);  // no regression
  EXPECT_GT(prov_rr, 0.0);
}

TEST_F(IntegrationTest, DownloadChainsResolveAgainstGroundTruth) {
  int traced = 0;
  for (const sim::DownloadEpisode& episode : out_.downloads) {
    auto it = prov_recorder_->download_map().find(episode.download_id);
    ASSERT_NE(it, prov_recorder_->download_map().end());
    search::LineageOptions options;
    options.min_visit_count = 1;  // everything recognizable: full chain
    auto report = search::TraceDownload(*prov_, it->second, options);
    ASSERT_TRUE(report.ok());
    // The nearest page ancestor must be the last page of the true chain.
    ASSERT_TRUE(report->found_recognizable);
    ASSERT_FALSE(episode.referral_chain_urls.empty());
    EXPECT_EQ(report->recognizable_url,
              episode.referral_chain_urls.back())
        << "download " << episode.download_id;
    if (++traced >= 10) break;
  }
  EXPECT_GT(traced, 0);
}

TEST_F(IntegrationTest, PlacesLosesTypedChainsProvenanceKeepsThem) {
  // Count visit rows with no referrer in each schema.
  uint64_t places_orphans = 0, places_visits = 0;
  ASSERT_TRUE(places_
                  ->ForEachVisit([&](uint64_t, const places::VisitRow& row) {
                    ++places_visits;
                    if (row.from_visit == 0) ++places_orphans;
                    return true;
                  })
                  .ok());
  // Provenance: count visit nodes with no incoming action edge.
  uint64_t prov_orphans = 0, prov_visits = 0;
  ASSERT_TRUE(
      prov_->graph()
          .ForEachNode([&](const graph::Node& node) {
            if (node.kind !=
                static_cast<uint32_t>(prov::NodeKind::kVisit)) {
              return true;
            }
            ++prov_visits;
            uint64_t in_actions = 0;
            auto st = prov_->graph().ForEachEdge(
                node.id, graph::Direction::kIn,
                [&](const graph::Edge& edge) {
                  if (edge.kind !=
                      static_cast<uint32_t>(prov::EdgeKind::kInstanceOf)) {
                    ++in_actions;
                  }
                  return true;
                });
            if (!st.ok()) return false;
            if (in_actions == 0) ++prov_orphans;
            return true;
          })
          .ok());
  ASSERT_GT(places_visits, 0u);
  double places_rate =
      static_cast<double>(places_orphans) / places_visits;
  double prov_rate = static_cast<double>(prov_orphans) / prov_visits;
  EXPECT_LT(prov_rate, places_rate)
      << "provenance must keep strictly more referrer relationships";
}

TEST_F(IntegrationTest, SurvivesReopenWithAllQueries) {
  std::string some_query;
  for (const auto& episode : out_.searches) {
    if (!episode.query.empty()) {
      some_query = episode.query;
      break;
    }
  }
  ASSERT_FALSE(some_query.empty());

  // Drop everything and reopen from the same "file".
  searcher_.reset();
  prov_recorder_.reset();
  places_recorder_.reset();
  prov_.reset();
  places_.reset();
  db_.reset();

  DbOptions opts;
  opts.env = &env_;
  opts.sync = false;
  auto db = storage::Db::Open("world.db", opts);
  ASSERT_TRUE(db.ok());
  auto prov = prov::ProvStore::Open(**db, {});
  ASSERT_TRUE(prov.ok());
  auto searcher = search::HistorySearcher::Open(**db, **prov);
  ASSERT_TRUE(searcher.ok());
  auto results = (*searcher)->ContextualSearch(some_query, {});
  ASSERT_TRUE(results.ok());
  EXPECT_FALSE(results->pages.empty());
}

}  // namespace
}  // namespace bp
