// Tests for the provenance store: schema ingestion, versioning policies,
// the DAG invariant (property-tested under random action streams), and
// time queries.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/algo.hpp"
#include "prov/prov_store.hpp"
#include "storage/env.hpp"
#include "util/rng.hpp"

namespace bp::prov {
namespace {

using graph::Direction;
using graph::Edge;
using graph::Node;
using storage::DbOptions;
using storage::MemEnv;
using util::Minutes;
using util::Rng;
using util::Seconds;

class ProvTest : public ::testing::TestWithParam<VersionPolicy> {
 protected:
  void SetUp() override {
    DbOptions opts;
    opts.env = &env_;
    auto db = storage::Db::Open("prov.db", opts);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    ProvOptions popts;
    popts.policy = GetParam();
    auto store = ProvStore::Open(*db_, popts);
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
  }

  bool NodePolicy() const {
    return GetParam() == VersionPolicy::kVersionNodes;
  }

  MemEnv env_;
  std::unique_ptr<storage::Db> db_;
  std::unique_ptr<ProvStore> store_;
};

TEST_P(ProvTest, VisitCreatesPageAndPolicyShapedView) {
  auto v1 = store_->RecordVisit("http://a", "Page A", EdgeKind::kTyped, 0,
                                1000, 1);
  ASSERT_TRUE(v1.ok());
  auto page = store_->PageForUrl("http://a");
  ASSERT_TRUE(page.ok());

  if (NodePolicy()) {
    EXPECT_NE(*v1, *page);  // distinct visit instance
    auto canonical = store_->PageOfView(*v1);
    ASSERT_TRUE(canonical.ok());
    EXPECT_EQ(*canonical, *page);
  } else {
    EXPECT_EQ(*v1, *page);  // the page IS the view
  }

  auto node = store_->graph().GetNode(*page);
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(node->attrs.GetString(kAttrUrl), "http://a");
  EXPECT_EQ(node->attrs.GetInt(kAttrVisitCount), 1);
}

TEST_P(ProvTest, RevisitBumpsVisitCountNotPageCount) {
  auto v1 =
      store_->RecordVisit("http://a", "A", EdgeKind::kTyped, 0, 1000, 1);
  auto v2 = store_->RecordVisit("http://a", "A", EdgeKind::kLink, *v1,
                                2000, 1);
  ASSERT_TRUE(v2.ok());
  auto page = store_->PageForUrl("http://a");
  auto node = store_->graph().GetNode(*page);
  EXPECT_EQ(node->attrs.GetInt(kAttrVisitCount), 2);

  auto views = store_->ViewsOfPage(*page);
  ASSERT_TRUE(views.ok());
  if (NodePolicy()) {
    EXPECT_EQ(views->size(), 2u);
  } else {
    EXPECT_EQ(views->size(), 1u);  // just the page itself
  }
}

TEST_P(ProvTest, NavigationEdgeRecorded) {
  auto v1 =
      store_->RecordVisit("http://a", "A", EdgeKind::kTyped, 0, 1000, 1);
  auto v2 = store_->RecordVisit("http://b", "B", EdgeKind::kLink, *v1,
                                2000, 1);
  ASSERT_TRUE(v2.ok());
  int nav_edges = 0;
  ASSERT_TRUE(store_->graph()
                  .ForEachEdge(*v1, Direction::kOut,
                               [&](const Edge& edge) {
                                 if (IsNavigationEdge(
                                         static_cast<EdgeKind>(edge.kind))) {
                                   EXPECT_EQ(edge.dst, *v2);
                                   EXPECT_EQ(edge.attrs.GetInt(kAttrTime),
                                             2000);
                                   ++nav_edges;
                                 }
                                 return true;
                               })
                  .ok());
  EXPECT_EQ(nav_edges, 1);
}

TEST_P(ProvTest, TypedEdgeIsFirstClass) {
  // The relationship Places drops must exist here.
  auto v1 =
      store_->RecordVisit("http://a", "A", EdgeKind::kTyped, 0, 1000, 1);
  auto v2 = store_->RecordVisit("http://b", "B", EdgeKind::kTyped, *v1,
                                2000, 1);
  ASSERT_TRUE(v2.ok());
  bool found = false;
  ASSERT_TRUE(store_->graph()
                  .ForEachEdge(*v2, Direction::kIn,
                               [&](const Edge& edge) {
                                 if (edge.kind ==
                                     static_cast<uint32_t>(EdgeKind::kTyped)) {
                                   found = true;
                                 }
                                 return true;
                               })
                  .ok());
  EXPECT_TRUE(found);
}

TEST_P(ProvTest, SearchLineage) {
  auto from =
      store_->RecordVisit("http://start", "S", EdgeKind::kTyped, 0, 100, 1);
  auto issue = store_->RecordSearch("rosebud", *from, 200);
  ASSERT_TRUE(issue.ok());
  auto results = store_->RecordVisit("https://search/q=rosebud",
                                     "rosebud results", EdgeKind::kLink,
                                     *from, 300, 1);
  ASSERT_TRUE(store_->LinkSearchResult(*issue, *results).ok());

  // Canonical term node exists, deduplicated.
  auto term = store_->TermForQuery("rosebud");
  ASSERT_TRUE(term.ok());
  auto issue2 = store_->RecordSearch("rosebud", *results, 400);
  ASSERT_TRUE(issue2.ok());
  EXPECT_NE(*issue, *issue2);  // new issuance instance
  auto term_node = store_->graph().GetNode(*term);
  EXPECT_EQ(term_node->attrs.GetInt(kAttrUseCount), 2);

  // Issuances point at the canonical term.
  int instances = 0;
  ASSERT_TRUE(
      store_->graph()
          .ForEachEdge(*term, Direction::kIn,
                       [&](const Edge& edge) {
                         if (edge.kind == static_cast<uint32_t>(
                                              EdgeKind::kTermInstanceOf)) {
                           ++instances;
                         }
                         return true;
                       })
          .ok());
  EXPECT_EQ(instances, 2);
}

TEST_P(ProvTest, BookmarkDownloadFormLineage) {
  auto visit =
      store_->RecordVisit("http://a", "A", EdgeKind::kTyped, 0, 100, 1);
  auto bookmark = store_->RecordBookmarkAdd("A bookmark", *visit, 200);
  ASSERT_TRUE(bookmark.ok());
  auto clicked = store_->RecordVisit("http://a", "A", EdgeKind::kLink, 0,
                                     300, 1);
  ASSERT_TRUE(store_->LinkBookmarkClick(*bookmark, *clicked).ok());

  auto download =
      store_->RecordDownload("http://a/file.zip", "/tmp/file.zip", *visit,
                             400);
  ASSERT_TRUE(download.ok());
  auto form = store_->RecordFormSubmit("q=wine", *visit, 500);
  ASSERT_TRUE(form.ok());
  auto result_page = store_->RecordVisit("http://a/results", "R",
                                         EdgeKind::kLink, *visit, 600, 1);
  ASSERT_TRUE(store_->LinkFormResult(*form, *result_page).ok());

  auto bookmark_node = store_->graph().GetNode(*bookmark);
  EXPECT_EQ(bookmark_node->kind,
            static_cast<uint32_t>(NodeKind::kBookmark));
  auto download_node = store_->graph().GetNode(*download);
  EXPECT_EQ(download_node->attrs.GetString(kAttrTarget), "/tmp/file.zip");
  auto form_node = store_->graph().GetNode(*form);
  EXPECT_EQ(form_node->attrs.GetString(kAttrSummary), "q=wine");
}

TEST_P(ProvTest, InvariantsHoldOnRandomActionStream) {
  // Property: whatever interleaving of actions occurs, the provenance
  // graph invariants hold (structural DAG under node versioning; fully
  // timestamped navigation edges under edge versioning).
  Rng rng(GetParam() == VersionPolicy::kVersionNodes ? 111 : 222);
  std::vector<NodeId> views;
  std::vector<NodeId> bookmarks;
  std::vector<NodeId> issues;
  int64_t now = 1000;

  for (int op = 0; op < 400; ++op) {
    now += 1 + static_cast<int64_t>(rng.Uniform(5000));
    std::string url = "http://site" + std::to_string(rng.Uniform(40)) +
                      ".example/p" + std::to_string(rng.Uniform(10));
    double roll = rng.UniformReal();
    if (roll < 0.55 || views.empty()) {
      NodeId ref = views.empty() || rng.Bernoulli(0.2)
                       ? 0
                       : views[rng.Uniform(views.size())];
      EdgeKind kind = rng.Bernoulli(0.3) ? EdgeKind::kTyped
                      : rng.Bernoulli(0.1) ? EdgeKind::kRedirect
                                           : EdgeKind::kLink;
      auto v = store_->RecordVisit(url, "t", kind, ref, now,
                                   static_cast<int64_t>(rng.Uniform(4)));
      ASSERT_TRUE(v.ok());
      views.push_back(*v);
    } else if (roll < 0.65) {
      auto issue = store_->RecordSearch(
          "query" + std::to_string(rng.Uniform(12)),
          views[rng.Uniform(views.size())], now);
      ASSERT_TRUE(issue.ok());
      issues.push_back(*issue);
    } else if (roll < 0.72 && !issues.empty()) {
      auto v = store_->RecordVisit(url, "results", EdgeKind::kLink, 0, now,
                                   1);
      ASSERT_TRUE(v.ok());
      ASSERT_TRUE(store_
                      ->LinkSearchResult(issues[rng.Uniform(issues.size())],
                                         *v)
                      .ok());
      views.push_back(*v);
    } else if (roll < 0.80) {
      auto b = store_->RecordBookmarkAdd(
          "bm", views[rng.Uniform(views.size())], now);
      ASSERT_TRUE(b.ok());
      bookmarks.push_back(*b);
    } else if (roll < 0.86 && !bookmarks.empty()) {
      auto v = store_->RecordVisit(url, "t", EdgeKind::kLink, 0, now, 1);
      ASSERT_TRUE(v.ok());
      ASSERT_TRUE(
          store_
              ->LinkBookmarkClick(bookmarks[rng.Uniform(bookmarks.size())],
                                  *v)
              .ok());
      views.push_back(*v);
    } else if (roll < 0.93) {
      ASSERT_TRUE(store_
                      ->RecordDownload(url + "/f.zip", "/tmp/f",
                                       views[rng.Uniform(views.size())],
                                       now)
                      .ok());
    } else {
      ASSERT_TRUE(
          store_->RecordClose(views[rng.Uniform(views.size())], now).ok());
    }
  }

  auto ok = store_->CheckInvariants();
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

TEST_P(ProvTest, CloseTimesAndIntervals) {
  auto v1 =
      store_->RecordVisit("http://a", "A", EdgeKind::kTyped, 0, 1000, 1);
  auto v2 = store_->RecordVisit("http://b", "B", EdgeKind::kTyped, 0,
                                Seconds(2), 2);
  ASSERT_TRUE(v1.ok() && v2.ok());

  if (!NodePolicy()) {
    // Edge policy cannot answer interval queries — and says so.
    EXPECT_EQ(store_->VisitIntervals().status().code(),
              util::StatusCode::kFailedPrecondition);
    return;
  }
  ASSERT_TRUE(store_->RecordClose(*v1, Seconds(30)).ok());
  ASSERT_TRUE(store_->RecordClose(*v2, Minutes(2)).ok());

  auto intervals = store_->VisitIntervals();
  ASSERT_TRUE(intervals.ok());
  // v1 [1s, 30s) and v2 [2s, 120s) overlap.
  auto at = (*intervals)->At(Seconds(10));
  std::sort(at.begin(), at.end());
  EXPECT_EQ(at, (std::vector<uint64_t>{*v1, *v2}));
  // After v1 closes only v2 is open.
  at = (*intervals)->At(Seconds(60));
  EXPECT_EQ(at, (std::vector<uint64_t>{*v2}));
}

TEST_P(ProvTest, CloseTimesCanBeDisabled) {
  DbOptions opts;
  opts.env = &env_;
  auto db = storage::Db::Open("noclose.db", opts);
  ASSERT_TRUE(db.ok());
  ProvOptions popts;
  popts.policy = GetParam();
  popts.record_close_times = false;
  auto store = ProvStore::Open(**db, popts);
  ASSERT_TRUE(store.ok());

  auto v = (*store)->RecordVisit("http://a", "A", EdgeKind::kTyped, 0,
                                 1000, 1);
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE((*store)->RecordClose(*v, 5000).ok());  // silently ignored
  if (NodePolicy()) {
    auto intervals = (*store)->VisitIntervals();
    ASSERT_TRUE(intervals.ok());
    // "Every page is always open": still matches far in the future.
    EXPECT_EQ((*intervals)->At(util::Days(1000)).size(), 1u);
  }
}

TEST_P(ProvTest, PersistsAcrossReopen) {
  auto v1 =
      store_->RecordVisit("http://a", "A", EdgeKind::kTyped, 0, 1000, 1);
  ASSERT_TRUE(store_->RecordSearch("findme", *v1, 2000).ok());
  store_.reset();
  db_.reset();

  DbOptions opts;
  opts.env = &env_;
  auto db = storage::Db::Open("prov.db", opts);
  ASSERT_TRUE(db.ok());
  ProvOptions popts;
  popts.policy = GetParam();
  auto store = ProvStore::Open(**db, popts);
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE((*store)->PageForUrl("http://a").ok());
  EXPECT_TRUE((*store)->TermForQuery("findme").ok());
}

TEST_P(ProvTest, RejectsNonNavigationEdgeKindForVisit) {
  EXPECT_THROW((void)store_->RecordVisit("http://a", "A",
                                         EdgeKind::kInstanceOf, 0, 1, 1),
               std::logic_error);
}

TEST_P(ProvTest, BatchedWalIngestMatchesUnbatchedAndSurvivesCrash) {
  // Batched ingest over a WAL-mode database: the production capture
  // configuration. Contents must match the per-event path, invariants
  // must hold, and a crash (snapshot) after the batch commit must
  // recover every record from the log alone.
  MemEnv wal_env;
  DbOptions opts;
  opts.env = &wal_env;
  opts.durability = storage::DurabilityMode::kWal;
  opts.wal_group_commit = 1;
  std::map<std::string, std::string> crashed;
  {
    auto db = storage::Db::Open("prov.db", opts);
    ASSERT_TRUE(db.ok());
    ProvOptions popts;
    popts.policy = GetParam();
    auto store = ProvStore::Open(**db, popts);
    ASSERT_TRUE(store.ok());

    ProvStore::IngestBatch batch(**store);
    NodeId prev = 0;
    for (int i = 0; i < 20; ++i) {
      auto visit = (*store)->RecordVisit(
          "http://site/" + std::to_string(i % 5), "t", EdgeKind::kLink,
          prev, 1000 + i * 100, 1);
      ASSERT_TRUE(visit.ok());
      prev = *visit;
    }
    ASSERT_TRUE(batch.Commit().ok());
    crashed = wal_env.SnapshotAll();  // power loss before clean close
  }
  ASSERT_TRUE(crashed.count("prov.db.wal") > 0);

  wal_env.RestoreAll(crashed);
  auto db = storage::Db::Open("prov.db", opts);
  ASSERT_TRUE(db.ok());
  ProvOptions popts;
  popts.policy = GetParam();
  auto store = ProvStore::Open(**db, popts);
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(
        (*store)->PageForUrl("http://site/" + std::to_string(i)).ok());
  }
  auto invariants = (*store)->CheckInvariants();
  ASSERT_TRUE(invariants.ok());
  EXPECT_TRUE(*invariants);
  // 5 pages; node policy adds 20 visit instances.
  auto nodes = (*store)->NodeCount();
  ASSERT_TRUE(nodes.ok());
  EXPECT_EQ(*nodes, NodePolicy() ? 25u : 5u);
}

TEST_P(ProvTest, AbandonedIngestBatchRollsBackAtomically) {
  auto before = store_->NodeCount();
  ASSERT_TRUE(before.ok());
  {
    ProvStore::IngestBatch batch(*store_);
    auto visit = store_->RecordVisit("http://doomed", "D", EdgeKind::kLink,
                                     0, 1000, 1);
    ASSERT_TRUE(visit.ok());
    // No Commit: destructor rolls the whole batch back.
  }
  auto after = store_->NodeCount();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, *before);
  EXPECT_TRUE(store_->PageForUrl("http://doomed").status().IsNotFound());
}

INSTANTIATE_TEST_SUITE_P(
    Policies, ProvTest,
    ::testing::Values(VersionPolicy::kVersionNodes,
                      VersionPolicy::kTimestampEdges),
    [](const ::testing::TestParamInfo<VersionPolicy>& info) {
      return info.param == VersionPolicy::kVersionNodes ? "VersionNodes"
                                                        : "TimestampEdges";
    });

}  // namespace
}  // namespace bp::prov
