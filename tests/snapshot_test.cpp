// Snapshot read transactions over the storage engine: a snapshot sees
// exactly the committed state at BeginRead — never later commits, never
// uncommitted transaction state — while the single writer keeps
// committing; live snapshots pin WAL frames (checkpoints defer, with
// FailedPrecondition on the explicit path); bound handles reject
// mutation; and a 4-reader / 1-writer stress (run under TSan in CI)
// checks bit-stable iteration against >= 1000 concurrent commits.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "storage/btree.hpp"
#include "storage/db.hpp"
#include "storage/env.hpp"
#include "storage/snapshot.hpp"
#include "util/hash.hpp"
#include "util/serde.hpp"
#include "util/strings.hpp"

namespace bp::storage {
namespace {

// Deterministic row value so any reader can verify any row in
// isolation: a torn or mixed-version read cannot forge the checksum.
std::string ValueFor(uint64_t id) {
  return util::StrFormat("v%llu:%llx", (unsigned long long)id,
                         (unsigned long long)util::Fnv1a64(
                             util::OrderedKeyU64(id)));
}

class SnapshotTest : public ::testing::Test {
 protected:
  std::unique_ptr<Db> OpenDb(DurabilityMode mode = DurabilityMode::kWal,
                             uint64_t checkpoint_bytes = 4 << 20) {
    DbOptions opts;
    opts.env = &env_;
    opts.sync = false;
    opts.durability = mode;
    opts.wal_checkpoint_bytes = checkpoint_bytes;
    auto db = Db::Open("snap.db", opts);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return std::move(*db);
  }

  // Rows [lo, hi) with self-verifying values, one commit per call.
  void PutRange(Db& db, BTree* tree, uint64_t lo, uint64_t hi) {
    ASSERT_TRUE(db.Begin().ok());
    for (uint64_t id = lo; id < hi; ++id) {
      ASSERT_TRUE(tree->Put(util::OrderedKeyU64(id), ValueFor(id)).ok());
    }
    ASSERT_TRUE(db.Commit().ok());
  }

  MemEnv env_;
};

TEST_F(SnapshotTest, SeesCommittedStateNotLaterWrites) {
  auto db = OpenDb();
  BTree* tree = *db->OpenOrCreateTree("t");
  PutRange(*db, tree, 1, 101);

  auto snap = db->BeginRead();
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  BTree frozen = tree->BoundAt(**snap);

  // Writer moves on: new rows plus an overwrite of row 1.
  PutRange(*db, tree, 101, 201);
  ASSERT_TRUE(tree->Put(util::OrderedKeyU64(1), "rewritten").ok());

  // Live handle sees the new world...
  EXPECT_EQ(*tree->Count(), 200u);
  EXPECT_EQ(*tree->Get(util::OrderedKeyU64(1)), "rewritten");
  // ...the frozen handle still sees exactly the snapshot.
  EXPECT_EQ(*frozen.Count(), 100u);
  EXPECT_EQ(*frozen.Get(util::OrderedKeyU64(1)), ValueFor(1));
  EXPECT_TRUE(frozen.Get(util::OrderedKeyU64(150)).status().IsNotFound());

  // Cursor over the frozen view: every row, correct values, and the
  // same result on a second pass (bit-stable).
  for (int pass = 0; pass < 2; ++pass) {
    uint64_t seen = 0;
    BTree::Cursor cur = frozen.NewCursor();
    for (cur.SeekFirst(); cur.Valid(); cur.Next()) {
      ++seen;
      EXPECT_EQ(cur.value(), ValueFor(seen));
    }
    ASSERT_TRUE(cur.status().ok()) << cur.status().ToString();
    EXPECT_EQ(seen, 100u);
  }
}

TEST_F(SnapshotTest, IgnoresUncommittedTransactionState) {
  auto db = OpenDb();
  BTree* tree = *db->OpenOrCreateTree("t");
  PutRange(*db, tree, 1, 11);

  ASSERT_TRUE(db->Begin().ok());
  ASSERT_TRUE(tree->Put(util::OrderedKeyU64(99), "uncommitted").ok());
  // Mid-transaction snapshots are legal and see the last COMMITTED
  // state.
  auto snap = db->BeginRead();
  ASSERT_TRUE(snap.ok());
  BTree frozen = tree->BoundAt(**snap);
  EXPECT_EQ(*frozen.Count(), 10u);
  EXPECT_TRUE(frozen.Get(util::OrderedKeyU64(99)).status().IsNotFound());
  ASSERT_TRUE(db->Commit().ok());
  // Still the old view after the commit lands...
  EXPECT_EQ(*frozen.Count(), 10u);
  // ...and a fresh snapshot sees it.
  auto snap2 = db->BeginRead();
  ASSERT_TRUE(snap2.ok());
  BTree frozen2 = tree->BoundAt(**snap2);
  EXPECT_EQ(*frozen2.Count(), 11u);
  EXPECT_GT((*snap2)->commit_seq(), (*snap)->commit_seq());
}

TEST_F(SnapshotTest, OverflowValuesReadThroughSnapshot) {
  auto db = OpenDb();
  BTree* tree = *db->OpenOrCreateTree("t");
  const std::string big(3 * kPageSize, 'x');
  ASSERT_TRUE(tree->Put("big", big).ok());

  auto snap = db->BeginRead();
  ASSERT_TRUE(snap.ok());
  BTree frozen = tree->BoundAt(**snap);
  ASSERT_TRUE(tree->Put("big", "small now").ok());

  EXPECT_EQ(*frozen.Get("big"), big);
  EXPECT_EQ(*tree->Get("big"), "small now");
}

TEST_F(SnapshotTest, JournalModeRejectsSnapshots) {
  auto db = OpenDb(DurabilityMode::kRollbackJournal);
  auto snap = db->BeginRead();
  ASSERT_FALSE(snap.ok());
  EXPECT_EQ(snap.status().code(), util::StatusCode::kFailedPrecondition);
}

// Satellite regression: the documented Checkpoint preconditions are
// enforced as FailedPrecondition, not silently ignored.
TEST_F(SnapshotTest, CheckpointFailsWithOpenTransactionOrLiveSnapshot) {
  auto db = OpenDb();
  BTree* tree = *db->OpenOrCreateTree("t");
  PutRange(*db, tree, 1, 11);

  ASSERT_TRUE(db->Begin().ok());
  ASSERT_TRUE(tree->Put(util::OrderedKeyU64(11), ValueFor(11)).ok());
  util::Status in_txn = db->pager().Checkpoint();
  EXPECT_EQ(in_txn.code(), util::StatusCode::kFailedPrecondition);
  ASSERT_TRUE(db->Commit().ok());

  {
    auto snap = db->BeginRead();
    ASSERT_TRUE(snap.ok());
    EXPECT_EQ(db->pager().live_snapshots(), 1u);
    util::Status pinned = db->pager().Checkpoint();
    EXPECT_EQ(pinned.code(), util::StatusCode::kFailedPrecondition);
  }
  EXPECT_EQ(db->pager().live_snapshots(), 0u);
  EXPECT_TRUE(db->pager().Checkpoint().ok());
}

TEST_F(SnapshotTest, SnapshotDecodesCompressedSlotsBeforePooling) {
  // Regression: Snapshot::ReadPage used to publish a still-compressed
  // checkpoint frame into the shared pool. Pool images must always be
  // raw pages — the writer's FetchFrame trusts them — so the poisoned
  // entry surfaced as a corrupt interior page on the writer's next
  // descent through an evicted page.
  DbOptions opts;
  opts.env = &env_;
  opts.sync = false;
  opts.durability = DurabilityMode::kWal;
  opts.compression.mode = compress::CompressionOptions::Mode::kFast;
  opts.cache_pages = 8;  // force writer cache misses onto the pool
  auto db = Db::Open("snapcomp.db", opts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  BTree* tree = *(*db)->OpenOrCreateTree("t");
  ASSERT_TRUE((*db)->Begin().ok());
  for (uint64_t id = 0; id < 400; ++id) {
    // Compressible URL-shaped values so the fold compresses the tree.
    ASSERT_TRUE(tree->Put(util::OrderedKeyU64(id),
                          util::StrFormat(
                              "https://example.com/page/%04llu/section",
                              (unsigned long long)id))
                    .ok());
  }
  ASSERT_TRUE((*db)->Commit().ok());
  ASSERT_TRUE((*db)->pager().Checkpoint().ok());
  ASSERT_GT((*db)->pager().stats().compressed_pages, 0u);

  {
    // Snapshot reads pull the compressed slots out of the main file and
    // publish every image they resolve into the shared pool.
    auto snap = (*db)->BeginRead();
    ASSERT_TRUE(snap.ok());
    BTree frozen = tree->BoundAt(**snap);
    for (uint64_t id = 0; id < 400; ++id) {
      auto got = frozen.Get(util::OrderedKeyU64(id));
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_NE(got->find("example.com"), std::string::npos);
    }
  }
  // The writer (cache of 8 pages, long since evicted) now resolves its
  // descent through the images the snapshot published.
  EXPECT_EQ(*tree->Count(), 400u);
  EXPECT_EQ(*tree->Get(util::OrderedKeyU64(7)),
            "https://example.com/page/0007/section");
  EXPECT_GT((*db)->pager().stats().decompress_reads, 0u);
}

TEST_F(SnapshotTest, AutomaticCheckpointDefersWhileSnapshotLive) {
  // Tiny threshold: normally every commit would checkpoint.
  auto db = OpenDb(DurabilityMode::kWal, /*checkpoint_bytes=*/4096);
  BTree* tree = *db->OpenOrCreateTree("t");
  PutRange(*db, tree, 1, 51);
  const uint64_t folded_before = db->pager().stats().checkpoints;

  auto snap = db->BeginRead();
  ASSERT_TRUE(snap.ok());
  BTree frozen = tree->BoundAt(**snap);
  // Far past the threshold — every MaybeCheckpoint defers.
  PutRange(*db, tree, 51, 301);
  EXPECT_EQ(db->pager().stats().checkpoints, folded_before);
  // The pinned log keeps the frozen view intact.
  EXPECT_EQ(*frozen.Count(), 50u);

  snap->reset();  // release the pin
  PutRange(*db, tree, 301, 311);  // next commit re-arms the checkpoint
  EXPECT_GT(db->pager().stats().checkpoints, folded_before);
  EXPECT_EQ(*tree->Count(), 310u);
}

TEST_F(SnapshotTest, BoundHandlesRejectMutation) {
  auto db = OpenDb();
  BTree* tree = *db->OpenOrCreateTree("t");
  PutRange(*db, tree, 1, 3);
  auto snap = db->BeginRead();
  ASSERT_TRUE(snap.ok());
  BTree frozen = tree->BoundAt(**snap);
  EXPECT_THROW((void)frozen.Put("k", "v"), std::logic_error);
  EXPECT_THROW((void)frozen.Delete(util::OrderedKeyU64(1)),
               std::logic_error);
  EXPECT_THROW((void)frozen.FreeAllPages(), std::logic_error);
}

TEST_F(SnapshotTest, SharedPoolServesRepeatedReads) {
  // With the shared buffer pool (default), commit-time publication means
  // a snapshot's working set is already resident: repeated reads are all
  // pool hits, and the log/database file is never touched.
  auto db = OpenDb();
  BTree* tree = *db->OpenOrCreateTree("t");
  PutRange(*db, tree, 1, 101);
  auto snap = db->BeginRead();
  ASSERT_TRUE(snap.ok());
  BTree frozen = tree->BoundAt(**snap);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(*frozen.Count(), 100u);
  }
  SnapshotStats stats = (*snap)->stats();
  EXPECT_GT(stats.cache_hits, 0u);
  EXPECT_EQ(stats.pages_read, 0u);
  EXPECT_GT(db->pager().stats().pool_hits, 0u);
}

TEST_F(SnapshotTest, PrivateCacheFallbackWhenPoolDisabled) {
  // pool_bytes = 0 restores the pre-pool behavior: the first read of a
  // page goes to the log/database file, repeats hit the snapshot's own
  // copy-on-read cache.
  DbOptions opts;
  opts.env = &env_;
  opts.sync = false;
  opts.durability = DurabilityMode::kWal;
  opts.pool_bytes = 0;
  auto db = Db::Open("snap_nopool.db", opts);
  ASSERT_TRUE(db.ok());
  BTree* tree = *(*db)->OpenOrCreateTree("t");
  PutRange(**db, tree, 1, 101);
  auto snap = (*db)->BeginRead();
  ASSERT_TRUE(snap.ok());
  BTree frozen = tree->BoundAt(**snap);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(*frozen.Count(), 100u);
  }
  SnapshotStats stats = (*snap)->stats();
  EXPECT_GT(stats.pages_read, 0u);
  EXPECT_GT(stats.cache_hits, 0u);
  EXPECT_EQ((*db)->pager().stats().pool_hits, 0u);
}

TEST_F(SnapshotTest, PinnedPagesSurvivePoolThrashByteForByte) {
  // A pool whose budget is a handful of pages, thrashed hard while a
  // reader still holds page images (as every live PageView does): the
  // held bytes must stay byte-identical — eviction may forget a frame,
  // never free or mutate one in use.
  DbOptions opts;
  opts.env = &env_;
  opts.sync = false;
  opts.durability = DurabilityMode::kWal;
  opts.pool_bytes = BufferPool::kShards * 2 * kPageSize;
  auto db = Db::Open("snap_thrash.db", opts);
  ASSERT_TRUE(db.ok());
  BTree* tree = *(*db)->OpenOrCreateTree("t");
  PutRange(**db, tree, 1, 201);

  auto snap = (*db)->BeginRead();
  ASSERT_TRUE(snap.ok());

  // Pin every page of the frozen view and remember its bytes.
  std::vector<std::shared_ptr<const std::string>> pinned;
  std::vector<std::string> expected;
  for (PageId id = 1; id < (*snap)->page_count(); ++id) {
    auto page = (*snap)->ReadPage(id);
    ASSERT_TRUE(page.ok()) << page.status().ToString();
    pinned.push_back(*page);
    expected.push_back(**page);
  }

  // A cursor parked mid-iteration holds its own PageView across the
  // thrash below; it must resume on stable bytes.
  BTree frozen = tree->BoundAt(**snap);
  BTree::Cursor parked = frozen.NewCursor();
  parked.SeekFirst();
  for (int i = 0; i < 50 && parked.Valid(); ++i) parked.Next();
  ASSERT_TRUE(parked.Valid());

  // Thrash: hundreds of commits, each cycled through fresh snapshots so
  // the tiny pool evicts constantly.
  for (uint64_t batch = 0; batch < 30; ++batch) {
    PutRange(**db, tree, 1000 + batch * 50, 1000 + (batch + 1) * 50);
    auto churn = (*db)->BeginRead();
    ASSERT_TRUE(churn.ok());
    BTree churn_tree = tree->BoundAt(**churn);
    uint64_t rows = 0;
    BTree::Cursor cur = churn_tree.NewCursor();
    for (cur.SeekFirst(); cur.Valid(); cur.Next()) ++rows;
    ASSERT_GT(rows, 0u);
  }
  ASSERT_GT((*db)->pager().stats().pool_evictions, 0u);

  // Every pinned image is byte-for-byte what it was.
  for (size_t i = 0; i < pinned.size(); ++i) {
    EXPECT_EQ(*pinned[i], expected[i]) << "page " << (i + 1);
  }
  // The parked cursor finishes its frozen view: exactly the original
  // 200 self-verifying rows.
  uint64_t seen = 51;
  for (; parked.Valid(); parked.Next()) ++seen;
  ASSERT_TRUE(parked.status().ok()) << parked.status().ToString();
  EXPECT_EQ(seen, 201u);
}

// Eviction-correctness stress (run under TSan in CI): kReaders threads
// cycle through kSnapshotsPerReader snapshots each, two full passes per
// snapshot, while the writer commits kBatches batches and the pool —
// squeezed to a few pages per shard — evicts on nearly every read.
// Self-verifying row values catch any torn, stale, or recycled image;
// matching per-pass digests catch instability within a snapshot.
TEST_F(SnapshotTest, MultiSnapshotReadsStayStableWhilePoolThrashes) {
  constexpr int kReaders = 4;
  constexpr uint64_t kBatches = 200;
  constexpr uint64_t kRowsPerBatch = 8;
  DbOptions opts;
  opts.env = &env_;
  opts.sync = false;
  opts.durability = DurabilityMode::kWal;
  opts.pool_bytes = BufferPool::kShards * 2 * kPageSize;  // thrash hard
  auto opened = Db::Open("snap_stress.db", opts);
  ASSERT_TRUE(opened.ok());
  Db& db = **opened;
  BTree* tree = *db.OpenOrCreateTree("t");
  PutRange(db, tree, 1, 257);

  std::atomic<bool> writer_done{false};
  std::mutex failures_mu;
  std::vector<std::string> failures;
  auto fail = [&](std::string what) {
    std::lock_guard<std::mutex> lock(failures_mu);
    failures.push_back(std::move(what));
  };

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      uint64_t snapshots_taken = 0;
      while (!writer_done.load(std::memory_order_acquire) ||
             snapshots_taken < 3) {
        auto snap = db.BeginRead();
        if (!snap.ok()) {
          fail("BeginRead: " + snap.status().ToString());
          return;
        }
        ++snapshots_taken;
        BTree frozen = tree->BoundAt(**snap);
        uint64_t counts[2] = {0, 0};
        uint64_t digests[2] = {0, 0};
        for (int pass = 0; pass < 2; ++pass) {
          BTree::Cursor cur = frozen.NewCursor();
          for (cur.SeekFirst(); cur.Valid(); cur.Next()) {
            const uint64_t id = util::DecodeOrderedKeyU64(cur.key());
            if (cur.value() != ValueFor(id)) {
              fail(util::StrFormat("reader %d: row %llu corrupt", r,
                                   (unsigned long long)id));
              return;
            }
            ++counts[pass];
            digests[pass] ^= util::Fnv1a64(cur.value()) * (counts[pass]);
          }
        }
        if (counts[0] != counts[1] || digests[0] != digests[1]) {
          fail(util::StrFormat("reader %d: passes disagree", r));
          return;
        }
      }
    });
  }

  uint64_t next_row = 1000;
  for (uint64_t batch = 0; batch < kBatches; ++batch) {
    PutRange(db, tree, next_row, next_row + kRowsPerBatch);
    next_row += kRowsPerBatch;
  }
  writer_done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  for (const std::string& f : failures) ADD_FAILURE() << f;
  // The squeeze was real: the pool evicted throughout.
  EXPECT_GT(db.pager().stats().pool_evictions, 0u);
}

// The acceptance stress: 4 reader threads iterate cursors over their
// own snapshots while the writer commits >= 1000 batches. Every batch
// stamps a generation sentinel (read through the same snapshot), the
// appended rows, and one overwritten victim row with the batch number,
// so a snapshot that wrongly serves a post-snapshot committed image is
// caught by its too-new generation tag — not just by a count mismatch.
// Each reader checks, per snapshot: (a) row values verify against
// their key-derived checksum and carry generation <= the sentinel's,
// (b) the row count matches the sentinel generation exactly (atomicity
// — a snapshot can never surface half a batch), (c) a second full pass
// returns byte-identical results (bit-stability), and (d) commit
// horizons never move backwards.
TEST_F(SnapshotTest, FourReadersSeeBitStableViewsDuringThousandCommits) {
  constexpr uint64_t kInitialRows = 256;
  constexpr uint64_t kBatches = 1000;
  constexpr uint64_t kRowsPerBatch = 2;
  constexpr int kReaders = 4;
  // Generation sentinel: one reserved key (sorts after every row id)
  // rewritten by every batch.
  const std::string gen_key = util::OrderedKeyU64(UINT64_MAX);
  auto gen_value = [](uint64_t id, uint64_t gen) {
    return ValueFor(id) + util::StrFormat(":g%llu", (unsigned long long)gen);
  };
  // Returns the generation suffix, or UINT64_MAX on malformed values.
  auto parse_gen = [](std::string_view value) -> uint64_t {
    size_t at = value.rfind(":g");
    if (at == std::string_view::npos) return UINT64_MAX;
    return std::strtoull(std::string(value.substr(at + 2)).c_str(),
                         nullptr, 10);
  };

  auto db = OpenDb();
  BTree* tree = *db->OpenOrCreateTree("t");
  ASSERT_TRUE(db->Begin().ok());
  for (uint64_t id = 1; id <= kInitialRows; ++id) {
    ASSERT_TRUE(
        tree->Put(util::OrderedKeyU64(id), gen_value(id, 0)).ok());
  }
  ASSERT_TRUE(tree->Put(gen_key, util::OrderedKeyU64(0)).ok());
  ASSERT_TRUE(db->Commit().ok());

  std::atomic<bool> writer_done{false};
  std::mutex failures_mu;
  std::vector<std::string> failures;
  auto fail = [&](std::string what) {
    std::lock_guard<std::mutex> lock(failures_mu);
    failures.push_back(std::move(what));
  };

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      uint64_t last_seq = 0;
      uint64_t snapshots_taken = 0;
      while (!writer_done.load(std::memory_order_acquire) ||
             snapshots_taken < 3) {
        auto snap = db->BeginRead();
        if (!snap.ok()) {
          fail("BeginRead: " + snap.status().ToString());
          return;
        }
        ++snapshots_taken;
        if ((*snap)->commit_seq() < last_seq) {
          fail(util::StrFormat("reader %d: commit_seq went backwards", r));
          return;
        }
        last_seq = (*snap)->commit_seq();
        BTree frozen = tree->BoundAt(**snap);

        // The generation this snapshot froze at, via the same snapshot.
        auto gen_raw = frozen.Get(gen_key);
        if (!gen_raw.ok()) {
          fail("sentinel: " + gen_raw.status().ToString());
          return;
        }
        const uint64_t frozen_gen = util::DecodeOrderedKeyU64(*gen_raw);

        uint64_t counts[2] = {0, 0};
        uint64_t digests[2] = {0, 0};
        for (int pass = 0; pass < 2; ++pass) {
          BTree::Cursor cur = frozen.NewCursor();
          for (cur.SeekFirst(); cur.Valid(); cur.Next()) {
            const uint64_t id = util::DecodeOrderedKeyU64(cur.key());
            if (id == UINT64_MAX) continue;  // the sentinel itself
            ++counts[pass];
            const std::string_view value = cur.value();
            const uint64_t row_gen = parse_gen(value);
            if (value.substr(0, ValueFor(id).size()) != ValueFor(id) ||
                row_gen == UINT64_MAX) {
              fail(util::StrFormat("reader %d: row %llu corrupt", r,
                                   (unsigned long long)id));
              return;
            }
            if (row_gen > frozen_gen) {
              fail(util::StrFormat(
                  "reader %d: row %llu from generation %llu leaked into "
                  "a generation-%llu snapshot",
                  r, (unsigned long long)id, (unsigned long long)row_gen,
                  (unsigned long long)frozen_gen));
              return;
            }
            digests[pass] = util::Fnv1a64(value, digests[pass] ^ id);
          }
          if (!cur.status().ok()) {
            fail("cursor: " + cur.status().ToString());
            return;
          }
        }
        if (counts[0] != counts[1] || digests[0] != digests[1]) {
          fail(util::StrFormat("reader %d: snapshot not bit-stable", r));
          return;
        }
        // The sentinel pins the exact expected row count: any stale or
        // too-new leaf image in the append region breaks this equality.
        if (counts[0] != kInitialRows + frozen_gen * kRowsPerBatch) {
          fail(util::StrFormat(
              "reader %d: saw %llu rows at generation %llu — a torn or "
              "mixed-version batch",
              r, (unsigned long long)counts[0],
              (unsigned long long)frozen_gen));
          return;
        }
        // Spot-check point lookups through the same snapshot.
        for (uint64_t id = 1; id <= counts[0]; id += counts[0] / 7 + 1) {
          auto got = frozen.Get(util::OrderedKeyU64(id));
          if (!got.ok() || parse_gen(*got) > frozen_gen) {
            fail(util::StrFormat("reader %d: point get %llu failed", r,
                                 (unsigned long long)id));
            return;
          }
        }
      }
    });
  }

  // The single writer: >= 1000 batch commits, each appending rows,
  // rewriting one old victim row, and bumping the generation sentinel —
  // all tagged with the batch's generation number.
  uint64_t next = kInitialRows + 1;
  for (uint64_t b = 1; b <= kBatches; ++b) {
    ASSERT_TRUE(db->Begin().ok());
    for (uint64_t i = 0; i < kRowsPerBatch; ++i, ++next) {
      ASSERT_TRUE(
          tree->Put(util::OrderedKeyU64(next), gen_value(next, b)).ok());
    }
    const uint64_t victim = 1 + b % kInitialRows;
    ASSERT_TRUE(
        tree->Put(util::OrderedKeyU64(victim), gen_value(victim, b)).ok());
    ASSERT_TRUE(tree->Put(gen_key, util::OrderedKeyU64(b)).ok());
    ASSERT_TRUE(db->Commit().ok());
  }
  writer_done.store(true, std::memory_order_release);

  for (std::thread& t : readers) t.join();
  for (const std::string& what : failures) ADD_FAILURE() << what;
  // +1 for the generation sentinel.
  EXPECT_EQ(*tree->Count(), kInitialRows + kBatches * kRowsPerBatch + 1);
  EXPECT_EQ(db->pager().live_snapshots(), 0u);
}

}  // namespace
}  // namespace bp::storage
