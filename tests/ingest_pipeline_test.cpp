// Asynchronous ingest pipeline: IngestAsync never commits inline,
// Flush/Drain are durability barriers, read-your-writes holds through
// one-shot queries and snapshots, backpressure follows the configured
// policy, committer errors are sticky, the adaptive group commit
// collapses tail latency when the queue runs dry — and, via the
// crash-at-every-prefix harness, a crash never loses an acknowledged
// event and always recovers a clean prefix of the ticket order.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "capture/events.hpp"
#include "capture/pipeline.hpp"
#include "prov/provenance_db.hpp"
#include "sim/scenario.hpp"
#include "storage/env.hpp"

namespace bp::prov {
namespace {

using capture::BrowserEvent;
using capture::VisitEvent;

std::string Url(int i) {
  return "http://site" + std::to_string(i) + ".example/";
}

VisitEvent MakeVisit(uint64_t visit_id, std::string url,
                     util::TimeMs time = util::Days(1)) {
  VisitEvent v;
  v.time = time;
  v.tab = 1;
  v.visit_id = visit_id;
  v.url = std::move(url);
  v.title = "an example page";
  v.action = capture::NavigationAction::kTyped;
  return v;
}

ProvenanceDb::Options MemOptions(storage::MemEnv* env) {
  ProvenanceDb::Options options;
  options.db.env = env;
  return options;
}

// ------------------------------------------------------ read-your-writes

TEST(IngestPipelineTest, TicketsAreDenseAndMonotone) {
  storage::MemEnv env;
  auto db = ProvenanceDb::Open("async.db", MemOptions(&env));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  for (uint64_t i = 1; i <= 5; ++i) {
    auto ticket = (*db)->IngestAsync(MakeVisit(i, Url(static_cast<int>(i))));
    ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
    EXPECT_EQ(*ticket, i);
  }
  EXPECT_TRUE((*db)->Drain().ok());
  EXPECT_EQ((*db)->pipeline_stats().enqueued, 5u);
  EXPECT_EQ((*db)->pipeline_stats().committed, 5u);
}

TEST(IngestPipelineTest, OneShotQueriesSeeAsyncIngestWithoutExplicitFlush) {
  storage::MemEnv env;
  auto db = ProvenanceDb::Open("async.db", MemOptions(&env));
  ASSERT_TRUE(db.ok());

  sim::ScenarioBuilder s;
  uint64_t search = s.Search(1, "rosebud");
  s.Wait(util::Seconds(1));
  uint64_t results =
      s.Visit(1, "https://search.example/results?q=rosebud",
              "rosebud - search results",
              capture::NavigationAction::kSearchResult, 0, search);
  s.Wait(util::Seconds(5));
  s.Visit(1, "http://films.example/citizen-kane", "citizen kane 1941 film",
          capture::NavigationAction::kLink, results);
  for (const BrowserEvent& event : s.events()) {
    ASSERT_TRUE((*db)->IngestAsync(event).ok());
  }

  // No Flush: the one-shot query drains the pipeline itself
  // (drain_before_query), so it reads its own async writes.
  auto hits = (*db)->Search("rosebud");
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  bool found_kane = false;
  for (const auto& page : hits->pages) {
    if (page.url == "http://films.example/citizen-kane") found_kane = true;
  }
  EXPECT_TRUE(found_kane);
}

TEST(IngestPipelineTest, BeginSnapshotDrainsSoTheViewCoversAsyncIngest) {
  storage::MemEnv env;
  auto db = ProvenanceDb::Open("async.db", MemOptions(&env));
  ASSERT_TRUE(db.ok());
  for (uint64_t i = 1; i <= 8; ++i) {
    ASSERT_TRUE((*db)->IngestAsync(MakeVisit(i, Url(static_cast<int>(i)))).ok());
  }
  auto view = (*db)->BeginSnapshot();
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  // The frozen view includes every enqueued event (node-policy: one page
  // + one visit node per event).
  graph::QueryStats stats;
  uint64_t nodes = 0;
  for (auto cursor = view->Nodes(1, &stats); cursor.Valid(); cursor.Next()) {
    ++nodes;
  }
  EXPECT_EQ(nodes, 16u);
}

TEST(IngestPipelineTest, DrainBeforeQueryOffLeavesQueriesUnblocked) {
  storage::MemEnv env;
  ProvenanceDb::Options options = MemOptions(&env);
  options.async.drain_before_query = false;
  auto db = ProvenanceDb::Open("async.db", options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->IngestAsync(MakeVisit(1, Url(1))).ok());
  // The query may or may not see the event (no drain) — it must simply
  // succeed against whatever committed; an explicit Drain then makes
  // the event visible.
  EXPECT_TRUE((*db)->TextualSearch("example").ok());
  ASSERT_TRUE((*db)->Drain().ok());
  EXPECT_TRUE((*db)->store().PageForUrl(Url(1)).ok());
}

// ---------------------------------------------------------- durability

TEST(IngestPipelineTest, FlushClosesThePartialGroupCommitWindow) {
  storage::MemEnv env;
  ProvenanceDb::Options options = MemOptions(&env);
  options.db.wal_group_commit = 64;  // a window ingest alone never fills
  auto db = ProvenanceDb::Open("async.db", options);
  ASSERT_TRUE(db.ok());

  auto ticket = (*db)->IngestAsync(MakeVisit(1, Url(1)));
  ASSERT_TRUE(ticket.ok());
  for (uint64_t i = 2; i <= 5; ++i) {
    ticket = (*db)->IngestAsync(MakeVisit(i, Url(static_cast<int>(i))));
    ASSERT_TRUE(ticket.ok());
  }
  ASSERT_TRUE((*db)->Flush(*ticket).ok());
  // Acknowledged means DURABLE: nothing committed awaits an fsync, even
  // though the 64-commit window never filled — the adaptive group close
  // is what fixes the fixed-cadence tail-latency cliff.
  EXPECT_EQ((*db)->db().pager().unsynced_commits(), 0u);
  EXPECT_GE((*db)->db().pager().stats().group_commits, 1u);
  EXPECT_GE((*db)->pipeline_stats().early_flushes, 1u);
}

TEST(IngestPipelineTest, SynchronousIngestLeavesTheTailUnsynced) {
  // The contrast case for the test above: with a large group window and
  // no pipeline barrier, synchronous per-event ingest strands every
  // commit in the unfilled window until someone calls Sync().
  storage::MemEnv env;
  ProvenanceDb::Options options = MemOptions(&env);
  options.db.wal_group_commit = 64;
  auto db = ProvenanceDb::Open("sync.db", options);
  ASSERT_TRUE(db.ok());
  for (uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE((*db)->Ingest(MakeVisit(i, Url(static_cast<int>(i)))).ok());
  }
  EXPECT_GE((*db)->db().pager().unsynced_commits(), 5u);
  ASSERT_TRUE((*db)->Sync().ok());
  EXPECT_EQ((*db)->db().pager().unsynced_commits(), 0u);
}

// --------------------------------------------------------- backpressure

TEST(IngestPipelineTest, RejectPolicySurfacesFullQueueWithoutBlocking) {
  storage::MemEnv env;
  ProvenanceDb::Options options = MemOptions(&env);
  options.async.queue_capacity = 2;
  options.async.backpressure = capture::BackpressurePolicy::kReject;
  auto db = ProvenanceDb::Open("async.db", options);
  ASSERT_TRUE(db.ok());

  std::vector<int> accepted;
  bool rejected = false;
  {
    // Stall the committer: the Batch holds the writer lock it needs.
    ProvenanceDb::Batch batch(**db);
    // The pipeline can absorb at most one in-flight batch plus a full
    // queue; with capacity 2 a reject MUST appear within a handful of
    // enqueues, and the capture thread never blocks.
    for (int i = 1; i <= 20 && !rejected; ++i) {
      auto ticket = (*db)->IngestAsync(MakeVisit(i, Url(i)));
      if (ticket.ok()) {
        accepted.push_back(i);
      } else {
        EXPECT_TRUE(ticket.status().IsBudgetExhausted())
            << ticket.status().ToString();
        rejected = true;
      }
    }
    ASSERT_TRUE(batch.Commit().ok());
  }
  EXPECT_TRUE(rejected);
  EXPECT_GE((*db)->pipeline_stats().rejected, 1u);
  ASSERT_TRUE((*db)->Drain().ok());
  // Lossy but honest: every ACCEPTED event committed, no more, no less.
  for (int i : accepted) {
    EXPECT_TRUE((*db)->store().PageForUrl(Url(i)).ok()) << Url(i);
  }
  EXPECT_EQ((*db)->pipeline_stats().committed, accepted.size());
}

TEST(IngestPipelineTest, BlockPolicyIsLosslessUnderAFullQueue) {
  storage::MemEnv env;
  ProvenanceDb::Options options = MemOptions(&env);
  options.async.queue_capacity = 2;  // default kBlock
  auto db = ProvenanceDb::Open("async.db", options);
  ASSERT_TRUE(db.ok());

  constexpr int kEvents = 8;
  std::thread producer;
  {
    ProvenanceDb::Batch batch(**db);  // stall the committer
    producer = std::thread([&] {
      for (int i = 1; i <= kEvents; ++i) {
        auto ticket = (*db)->IngestAsync(MakeVisit(i, Url(i)));
        EXPECT_TRUE(ticket.ok()) << ticket.status().ToString();
      }
    });
    // 8 events cannot fit in one in-flight batch + a 2-slot queue, so
    // the producer is guaranteed to hit the blocking path while the
    // batch pins the committer; releasing the batch lets it finish.
    ASSERT_TRUE(batch.Commit().ok());
  }
  producer.join();
  ASSERT_TRUE((*db)->Drain().ok());
  EXPECT_GE((*db)->pipeline_stats().blocked_enqueues, 1u);
  EXPECT_EQ((*db)->pipeline_stats().committed,
            static_cast<uint64_t>(kEvents));
  for (int i = 1; i <= kEvents; ++i) {
    EXPECT_TRUE((*db)->store().PageForUrl(Url(i)).ok()) << Url(i);
  }
}

// --------------------------------------------------------- sticky errors

class PoisonSink : public capture::EventSink {
 public:
  util::Status OnEvent(const BrowserEvent& event) override {
    const auto* visit = std::get_if<VisitEvent>(&event);
    if (visit != nullptr && visit->url == "http://poison.example/") {
      return util::Status::IoError("poison event");
    }
    return util::Status::Ok();
  }
};

TEST(IngestPipelineTest, CommitterErrorIsStickyAndDropsTheBacklog) {
  storage::MemEnv env;
  auto db = ProvenanceDb::Open("async.db", MemOptions(&env));
  ASSERT_TRUE(db.ok());
  PoisonSink poison;
  (*db)->bus().Subscribe(&poison);

  ASSERT_TRUE((*db)->IngestAsync(MakeVisit(1, Url(1))).ok());
  ASSERT_TRUE((*db)->IngestAsync(
                      MakeVisit(2, "http://poison.example/"))
                  .ok());
  ASSERT_TRUE((*db)->IngestAsync(MakeVisit(3, Url(3))).ok());

  // The barrier reports the committer's failure...
  util::Status drained = (*db)->Drain();
  EXPECT_FALSE(drained.ok());
  EXPECT_EQ(drained.code(), util::StatusCode::kIoError);
  // ...the status is sticky on every subsequent entry point...
  EXPECT_EQ((*db)->pipeline_status().code(), util::StatusCode::kIoError);
  EXPECT_EQ((*db)->IngestAsync(MakeVisit(4, Url(4))).status().code(),
            util::StatusCode::kIoError);
  EXPECT_EQ((*db)->Drain().code(), util::StatusCode::kIoError);
  // ...and the poisoned batch is all-or-nothing: the event behind the
  // failure never surfaces (its batch rolled back / backlog dropped).
  EXPECT_FALSE((*db)->store().PageForUrl(Url(3)).ok());
  EXPECT_FALSE(
      (*db)->store().PageForUrl("http://poison.example/").ok());
}

// ------------------------------------------------------ async disabled

TEST(IngestPipelineTest, DisabledPipelineRejectsIngestAsyncOnly) {
  storage::MemEnv env;
  ProvenanceDb::Options options = MemOptions(&env);
  options.async.enabled = false;
  auto db = ProvenanceDb::Open("sync-only.db", options);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->IngestAsync(MakeVisit(1, Url(1))).status().code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_EQ((*db)->async_sink(), nullptr);
  // Barriers are trivially satisfied; the sync path is unaffected.
  EXPECT_TRUE((*db)->Drain().ok());
  EXPECT_TRUE((*db)->Ingest(MakeVisit(1, Url(1))).ok());
  EXPECT_TRUE((*db)->store().PageForUrl(Url(1)).ok());
}

// ------------------------------------------------- AsyncSink adapter

TEST(IngestPipelineTest, ExternalBusFeedsThePipelineThroughAsyncSink) {
  storage::MemEnv env;
  auto db = ProvenanceDb::Open("async.db", MemOptions(&env));
  ASSERT_TRUE(db.ok());

  // An instrumented browser's own bus, fanning out to the async
  // provenance path — Publish returns without any storage work.
  capture::EventBus browser_bus;
  ASSERT_NE((*db)->async_sink(), nullptr);
  browser_bus.Subscribe((*db)->async_sink());
  ASSERT_EQ(browser_bus.sink_count(), 1u);

  sim::ScenarioBuilder s;
  s.Visit(1, "http://a.example/", "A", capture::NavigationAction::kTyped);
  s.Visit(1, "http://b.example/", "B", capture::NavigationAction::kTyped);
  ASSERT_TRUE(browser_bus.PublishAll(s.events()).ok());
  ASSERT_TRUE((*db)->Drain().ok());
  EXPECT_TRUE((*db)->store().PageForUrl("http://a.example/").ok());
  EXPECT_TRUE((*db)->store().PageForUrl("http://b.example/").ok());
}

TEST(IngestPipelineTest, SelfFeedingSinkIsRefusedInsteadOfDeadlocking) {
  // Subscribing the async sink to the facade's OWN bus would make the
  // committer re-enqueue every event it commits — an infinite loop
  // that, under kBlock backpressure, wedges the committer against
  // itself. The pipeline refuses committer-thread enqueues instead:
  // the batch fails, the error latches, nothing hangs.
  storage::MemEnv env;
  auto db = ProvenanceDb::Open("async.db", MemOptions(&env));
  ASSERT_TRUE(db.ok());
  (*db)->bus().Subscribe((*db)->async_sink());

  ASSERT_TRUE((*db)->IngestAsync(MakeVisit(1, Url(1))).ok());
  util::Status drained = (*db)->Drain();  // must return, not deadlock
  EXPECT_EQ(drained.code(), util::StatusCode::kFailedPrecondition);
  EXPECT_EQ((*db)->pipeline_status().code(),
            util::StatusCode::kFailedPrecondition);
}

// ------------------------------------------------------- stress (TSan)

TEST(IngestPipelineStressTest, ProducersFlushesAndSnapshotReaders) {
  storage::MemEnv env;
  ProvenanceDb::Options options = MemOptions(&env);
  options.ingest_batch = 32;
  options.async.queue_capacity = 64;
  auto db = ProvenanceDb::Open("stress.db", options);
  ASSERT_TRUE(db.ok());

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  std::atomic<bool> stop{false};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        uint64_t id = static_cast<uint64_t>(p) * 1000000 + i + 1;
        std::string url = "http://p" + std::to_string(p) + ".example/" +
                          std::to_string(i);
        auto ticket = (*db)->IngestAsync(
            MakeVisit(id, std::move(url), util::Days(1) + id));
        ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
        if (i % 50 == 49) {
          ASSERT_TRUE((*db)->Flush(*ticket).ok());
        }
      }
    });
  }

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      uint64_t last_nodes = 0;
      while (!stop.load(std::memory_order_acquire)) {
        auto view = (*db)->BeginSnapshot();
        ASSERT_TRUE(view.ok()) << view.status().ToString();
        graph::QueryStats stats;
        uint64_t nodes = 0;
        for (auto cursor = view->Nodes(1, &stats); cursor.Valid();
             cursor.Next()) {
          ++nodes;
        }
        // Commit horizons only move forward.
        ASSERT_GE(nodes, last_nodes);
        last_nodes = nodes;
      }
    });
  }

  for (std::thread& t : producers) t.join();
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  ASSERT_TRUE((*db)->Drain().ok());

  const capture::PipelineStats stats = (*db)->pipeline_stats();
  EXPECT_EQ(stats.enqueued,
            static_cast<uint64_t>(kProducers) * kPerProducer);
  EXPECT_EQ(stats.committed, stats.enqueued);
  EXPECT_GE(stats.coalesced_txns, 1u);
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_TRUE((*db)
                    ->store()
                    .PageForUrl("http://p" + std::to_string(p) +
                                ".example/" +
                                std::to_string(kPerProducer - 1))
                    .ok());
  }
  EXPECT_TRUE((*db)->pipeline_status().ok());
}

// -------------------------------------------- crash-at-every-prefix
//
// The async extension of wal_test's crash-injection property: drive the
// pipeline with periodic Flush barriers while the MemEnv op log records
// every byte that hits the "disk", then crash at every prefix of the op
// sequence (plus torn cuts through each write), reopen, and require
// (a) the recovered database is a clean prefix of the ticket order —
// never a hole, never a torn batch — and (b) every event a Flush
// acknowledged before the crash point is present: an acknowledged event
// is NEVER lost.

TEST(IngestPipelineCrashTest, AcknowledgedEventsSurviveEveryCrashPrefix) {
  storage::MemEnv env;
  ProvenanceDb::Options options = MemOptions(&env);
  options.db.wal_group_commit = 4;
  options.ingest_batch = 3;  // small batches -> many txn boundaries

  // Schema setup BEFORE logging starts, so every crash point sits on a
  // well-formed database.
  {
    auto db = ProvenanceDb::Open("crash.db", options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
  }
  auto base = env.SnapshotAll();

  constexpr int kEvents = 30;
  constexpr int kFlushEvery = 5;
  struct AckPoint {
    size_t ops_done;  // op-log length when the Flush returned
    int acked;        // events acknowledged durable at that point
  };
  std::vector<AckPoint> acks;
  std::vector<storage::MemEnvOp> ops;
  {
    env.StartOpLog();
    auto db = ProvenanceDb::Open("crash.db", options);
    ASSERT_TRUE(db.ok());
    acks.push_back({env.OpLogSize(), 0});
    for (int i = 0; i < kEvents; ++i) {
      auto ticket = (*db)->IngestAsync(
          MakeVisit(static_cast<uint64_t>(i) + 1, Url(i)));
      ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
      if ((i + 1) % kFlushEvery == 0) {
        ASSERT_TRUE((*db)->Flush(*ticket).ok());
        // Flush(last enqueued) quiesces the committer (everything is
        // durable and the queue is empty), so the op log is stable.
        acks.push_back({env.OpLogSize(), i + 1});
      }
    }
    ASSERT_TRUE((*db)->Drain().ok());
    acks.push_back({env.OpLogSize(), kEvents});
    // Stop BEFORE the clean close: the crash window under test ends at
    // the last acknowledgment.
    ops = env.StopOpLog();
  }
  ASSERT_GT(ops.size(), acks.size());

  size_t checked = 0;
  for (size_t p = 0; p <= ops.size(); ++p) {
    std::vector<int64_t> cuts = {-1};  // clean crash between ops
    if (p < ops.size() && ops[p].kind == storage::MemEnvOp::Kind::kWrite) {
      int64_t len = static_cast<int64_t>(ops[p].data.size());
      for (int64_t cut : {int64_t{1}, len / 4, len / 2, 3 * len / 4,
                          len - 1}) {
        if (cut > 0 && cut < len) cuts.push_back(cut);
      }
    }
    for (int64_t partial : cuts) {
      env.RestoreAll(base);
      ASSERT_TRUE(env.ApplyOps(ops, p, partial).ok());

      auto db = ProvenanceDb::Open("crash.db", options);
      ASSERT_TRUE(db.ok()) << "crash at op " << p << " cut " << partial
                           << ": " << db.status().ToString();
      // (a) Clean prefix of the ticket order.
      int recovered = 0;
      while (recovered < kEvents &&
             (*db)->store().PageForUrl(Url(recovered)).ok()) {
        ++recovered;
      }
      for (int i = recovered; i < kEvents; ++i) {
        EXPECT_FALSE((*db)->store().PageForUrl(Url(i)).ok())
            << "hole in recovered prefix: event " << i
            << " present but event " << recovered
            << " absent (crash at op " << p << " cut " << partial << ")";
      }
      // (b) No acknowledged event lost.
      int acked = 0;
      for (const AckPoint& ack : acks) {
        if (ack.ops_done <= p) acked = ack.acked;
      }
      EXPECT_GE(recovered, acked)
          << "crash at op " << p << " cut " << partial << " lost "
          << (acked - recovered) << " acknowledged events";
      ++checked;
    }
  }
  EXPECT_GT(checked, ops.size());
}

}  // namespace
}  // namespace bp::prov
