// Property tests: the B+tree must behave exactly like std::map under
// arbitrary interleavings of Put/Get/Delete/scan, across a sweep of key
// distributions, value sizes (inline vs overflow), and operation mixes;
// and the pager must recover the committed prefix after a crash at any
// commit.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "storage/btree.hpp"
#include "storage/db.hpp"
#include "storage/env.hpp"
#include "util/rng.hpp"
#include "util/serde.hpp"
#include "util/strings.hpp"

namespace bp::storage {
namespace {

using util::Rng;

struct FuzzParams {
  uint64_t seed;
  int operations;
  int key_space;       // number of distinct keys
  int max_value_size;  // values uniform in [0, max]
  int delete_percent;  // share of ops that are deletes
  std::string label;
};

std::string KeyForIndex(Rng& rng, const FuzzParams& params) {
  uint64_t idx = rng.Zipf(static_cast<uint64_t>(params.key_space), 1.05);
  // Mix fixed-width numeric keys and variable-length string keys, since
  // callers use both.
  if (idx % 3 == 0) return util::OrderedKeyU64(idx);
  return "key/" + std::to_string(idx * 2654435761u % params.key_space);
}

class BTreeFuzzTest : public ::testing::TestWithParam<FuzzParams> {};

TEST_P(BTreeFuzzTest, MatchesReferenceModel) {
  const FuzzParams& params = GetParam();
  Rng rng(params.seed);

  MemEnv env;
  PagerOptions opts;
  opts.env = &env;
  auto pager_or = Pager::Open("db", opts);
  ASSERT_TRUE(pager_or.ok());
  auto& pager = *pager_or;
  ASSERT_TRUE(pager->Begin().ok());
  auto root = BTree::Create(*pager);
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(pager->Commit().ok());
  BTree tree(*pager, *root);

  std::map<std::string, std::string> model;

  for (int op = 0; op < params.operations; ++op) {
    std::string key = KeyForIndex(rng, params);
    int roll = static_cast<int>(rng.Uniform(100));
    if (roll < params.delete_percent) {
      Status st = tree.Delete(key);
      if (model.count(key) > 0) {
        ASSERT_TRUE(st.ok()) << "op " << op << ": " << st.ToString();
        model.erase(key);
      } else {
        ASSERT_TRUE(st.IsNotFound()) << "op " << op;
      }
    } else if (roll < params.delete_percent + 10) {
      // Point lookup against the model.
      auto got = tree.Get(key);
      auto it = model.find(key);
      if (it == model.end()) {
        ASSERT_TRUE(got.status().IsNotFound()) << "op " << op;
      } else {
        ASSERT_TRUE(got.ok()) << "op " << op;
        ASSERT_EQ(*got, it->second) << "op " << op;
      }
    } else {
      size_t len = rng.Uniform(static_cast<uint64_t>(params.max_value_size) + 1);
      std::string value(len, '\0');
      for (char& c : value) {
        c = static_cast<char>('a' + rng.Uniform(26));
      }
      ASSERT_TRUE(tree.Put(key, value).ok()) << "op " << op;
      model[key] = value;
    }
  }

  // Full-scan equivalence: same keys, same values, same order.
  auto it = model.begin();
  uint64_t scanned = 0;
  ASSERT_TRUE(tree.ForEach([&](std::string_view key, std::string_view value) {
                    EXPECT_NE(it, model.end());
                    if (it == model.end()) return false;
                    EXPECT_EQ(key, it->first);
                    EXPECT_EQ(value, it->second);
                    ++it;
                    ++scanned;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(it, model.end());
  EXPECT_EQ(scanned, model.size());
  EXPECT_EQ(*tree.Count(), model.size());

  // Structural sanity via stats.
  auto stats = tree.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->cells, model.size());
  uint64_t value_bytes = 0;
  for (const auto& [k, v] : model) value_bytes += v.size();
  EXPECT_EQ(stats->value_bytes, value_bytes);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BTreeFuzzTest,
    ::testing::Values(
        FuzzParams{101, 4000, 500, 40, 10, "small_values_light_delete"},
        FuzzParams{202, 3000, 200, 40, 45, "small_values_heavy_delete"},
        FuzzParams{303, 1200, 150, 3000, 20, "overflow_values"},
        FuzzParams{404, 2500, 50, 200, 30, "hot_keys_replacement"},
        FuzzParams{505, 4000, 4000, 20, 5, "wide_keyspace_append"},
        FuzzParams{606, 800, 30, 8000, 40, "giant_values_churn"}),
    [](const ::testing::TestParamInfo<FuzzParams>& info) {
      return info.param.label;
    });

// Crash-recovery property: run random committed batches; at a random
// commit, crash (journal synced, database write torn); after reopen the
// tree must equal the model as of the last *successful* commit.
struct CrashParams {
  uint64_t seed;
  int batches;
  int ops_per_batch;
  std::string label;
};

class CrashRecoveryTest : public ::testing::TestWithParam<CrashParams> {};

TEST_P(CrashRecoveryTest, RecoversToLastCommittedState) {
  const CrashParams& params = GetParam();
  Rng rng(params.seed);

  MemEnv env;
  PagerOptions opts;
  opts.env = &env;
  PageId root;
  {
    auto pager_or = Pager::Open("db", opts);
    ASSERT_TRUE(pager_or.ok());
    auto& pager = *pager_or;
    ASSERT_TRUE(pager->Begin().ok());
    auto root_or = BTree::Create(*pager);
    ASSERT_TRUE(root_or.ok());
    root = *root_or;
    ASSERT_TRUE(pager->Commit().ok());

    BTree tree(*pager, root);
    std::map<std::string, std::string> committed;
    std::map<std::string, std::string> pending;

    int crash_batch = static_cast<int>(rng.Uniform(params.batches));
    for (int batch = 0; batch <= crash_batch; ++batch) {
      bool crash_now = batch == crash_batch;
      pending = committed;
      ASSERT_TRUE(pager->Begin().ok());
      for (int op = 0; op < params.ops_per_batch; ++op) {
        std::string key = "k" + std::to_string(rng.Uniform(200));
        if (rng.Bernoulli(0.25) && pending.count(key) > 0) {
          ASSERT_TRUE(tree.Delete(key).ok());
          pending.erase(key);
        } else {
          std::string value =
              "batch" + std::to_string(batch) + "/op" + std::to_string(op) +
              std::string(rng.Uniform(120), 'p');
          ASSERT_TRUE(tree.Put(key, value).ok());
          pending[key] = value;
        }
      }
      if (crash_now) {
        pager->set_crash_after_journal_for_testing(true);
        Status st = pager->Commit();
        ASSERT_EQ(st.code(), util::StatusCode::kAborted);
        // Tear the database file to emulate a partial page write.
        auto file = env.Open("db");
        ASSERT_TRUE(file.ok());
        auto size = (*file)->Size();
        ASSERT_TRUE(size.ok());
        if (*size > kPageSize) {
          ASSERT_TRUE(
              (*file)
                  ->Write(*size - kPageSize / 2, std::string(64, '\xCC'))
                  .ok());
        }
      } else {
        ASSERT_TRUE(pager->Commit().ok());
        committed = pending;
      }
    }

    // Reopen (recovery path) and verify every committed key/value — and
    // nothing else — survived.
    auto reopened_or = Pager::Open("db", opts);
    ASSERT_TRUE(reopened_or.ok());
    BTree recovered(**reopened_or, root);
    auto it = committed.begin();
    ASSERT_TRUE(recovered
                    .ForEach([&](std::string_view key,
                                 std::string_view value) {
                      EXPECT_NE(it, committed.end());
                      if (it == committed.end()) return false;
                      EXPECT_EQ(key, it->first);
                      EXPECT_EQ(value, it->second);
                      ++it;
                      return true;
                    })
                    .ok());
    EXPECT_EQ(it, committed.end());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrashRecoveryTest,
    ::testing::Values(CrashParams{11, 8, 60, "early_crash"},
                      CrashParams{22, 16, 40, "mid_crash"},
                      CrashParams{33, 24, 25, "late_crash"},
                      CrashParams{44, 6, 200, "big_batches"},
                      CrashParams{55, 30, 10, "many_small_batches"}),
    [](const ::testing::TestParamInfo<CrashParams>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace bp::storage
