// Observability unit tests: histogram bucket geometry and the quantile
// error bound, lock-striped counter folding, registry find-or-create
// and collector lifecycle, exporter output shape, the scoped-span
// tracer's slow-op ring, and a concurrent-record stress that gives TSan
// a real interleaving to chew on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace bp::obs {
namespace {

// ------------------------------------------------------ bucket geometry

TEST(HistogramBucketTest, ExactBelowSubBuckets) {
  // Values below kSubBuckets each get their own bucket: zero error for
  // the tiny latencies that dominate a warm hot path.
  for (uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    const size_t index = Histogram::BucketIndex(v);
    EXPECT_EQ(Histogram::BucketLowerBound(index), v);
    EXPECT_EQ(Histogram::BucketUpperBound(index), v + 1);
  }
}

TEST(HistogramBucketTest, BoundsBracketEveryValue) {
  // lower <= v < upper for a sweep across the full range, including
  // the exact powers of two where off-by-ones like to live.
  std::vector<uint64_t> values;
  for (uint64_t shift = 0; shift < 63; ++shift) {
    const uint64_t p = uint64_t{1} << shift;
    values.push_back(p - 1);
    values.push_back(p);
    values.push_back(p + 1);
  }
  values.push_back(UINT64_MAX);
  for (uint64_t v : values) {
    const size_t index = Histogram::BucketIndex(v);
    ASSERT_LT(index, Histogram::kBucketCount) << "value " << v;
    EXPECT_LE(Histogram::BucketLowerBound(index), v) << "value " << v;
    if (index + 1 < Histogram::kBucketCount) {
      EXPECT_GT(Histogram::BucketUpperBound(index), v) << "value " << v;
    }
  }
}

TEST(HistogramBucketTest, BucketsAreContiguousAndMonotone) {
  for (size_t i = 0; i + 1 < Histogram::kBucketCount; ++i) {
    EXPECT_EQ(Histogram::BucketUpperBound(i),
              Histogram::BucketLowerBound(i + 1))
        << "gap/overlap at bucket " << i;
  }
}

TEST(HistogramBucketTest, RelativeWidthBound) {
  // Past the exact range, bucket width is at most lower_bound /
  // kSubBuckets — the invariant the ±6.25% quantile bound rests on.
  for (size_t i = Histogram::kSubBuckets; i + 1 < Histogram::kBucketCount;
       ++i) {
    const uint64_t lower = Histogram::BucketLowerBound(i);
    const uint64_t width = Histogram::BucketUpperBound(i) - lower;
    EXPECT_LE(width, std::max<uint64_t>(1, lower / Histogram::kSubBuckets))
        << "bucket " << i << " [" << lower << ", "
        << Histogram::BucketUpperBound(i) << ")";
  }
}

// ------------------------------------------------------------ quantiles

TEST(HistogramTest, QuantileWithinErrorBound) {
  // Log-uniform samples across five decades; the estimate must stay
  // within the documented ±1/(2*kSubBuckets) of the exact sample
  // quantile.
  util::Rng rng(42);
  Histogram h;
  std::vector<uint64_t> samples;
  for (int i = 0; i < 20000; ++i) {
    const double exponent = 5.0 * (static_cast<double>(rng.NextU64() % 10000) /
                                   10000.0);
    const uint64_t v = static_cast<uint64_t>(std::pow(10.0, exponent)) + 1;
    samples.push_back(v);
    h.Record(v);
  }
  std::sort(samples.begin(), samples.end());
  const double kBound = 1.0 / (2.0 * Histogram::kSubBuckets);
  for (double q : {0.5, 0.9, 0.99}) {
    const size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(samples.size())));
    const double exact =
        static_cast<double>(samples[std::min(rank, samples.size()) - 1]);
    const double estimate = h.Quantile(q);
    EXPECT_NEAR(estimate, exact, exact * kBound)
        << "q=" << q << " exact=" << exact << " estimate=" << estimate;
  }
}

TEST(HistogramTest, QuantileClampedToMaxAndEmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  h.Record(100);
  // A single sample: every quantile is that sample, not a bucket
  // midpoint above it.
  EXPECT_LE(h.Quantile(0.99), 100.0);
  EXPECT_GE(h.Quantile(0.5), 100.0 * (1.0 - 1.0 / Histogram::kSubBuckets));
  EXPECT_EQ(h.max(), 100u);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 100u);
}

TEST(HistogramTest, SnapshotMatchesAccessors) {
  Histogram h;
  for (uint64_t v : {1, 2, 3, 4, 100}) h.Record(v);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.sum, 110u);
  EXPECT_EQ(s.max, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 22.0);
  EXPECT_EQ(s.p50, h.Quantile(0.5));
  EXPECT_EQ(s.p99, h.Quantile(0.99));
}

// ---------------------------------------------------- concurrent stress

TEST(ObsStressTest, ConcurrentRecordersAreConsistent) {
  // 8 threads hammer one counter, one gauge, and one histogram. Under
  // TSan this is the data-race check for the striped/relaxed design;
  // everywhere it checks the totals fold correctly.
  Counter counter;
  Gauge gauge;
  Histogram h;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counter.Add(1);
        gauge.Set(static_cast<int64_t>(i));
        h.Record((i % 1000) + static_cast<uint64_t>(t));
        if (i % 1024 == 0) {
          (void)h.Quantile(0.5);  // concurrent reader
          (void)counter.value();
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  EXPECT_LT(gauge.value(), static_cast<int64_t>(kPerThread));
}

// ------------------------------------------------------------- registry

TEST(MetricsRegistryTest, FindOrCreateIsStableAndLabelAware) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("bp_test_total", "", "help");
  Counter* b = reg.GetCounter("bp_test_total", "", "ignored later");
  EXPECT_EQ(a, b);
  Counter* labeled = reg.GetCounter("bp_test_total", "db=\"x\"", "help");
  EXPECT_NE(a, labeled);
  Histogram* h = reg.GetHistogram("bp_test_us", "", "help");
  EXPECT_EQ(h, reg.GetHistogram("bp_test_us", "", ""));
}

TEST(MetricsRegistryTest, CollectorLifecycle) {
  MetricsRegistry reg;
  int runs = 0;
  const uint64_t token = reg.AddCollector([&](CollectionSink& sink) {
    ++runs;
    sink.Counter("bp_collected_total", "db=\"t\"", "from collector", 7);
  });
  std::string json = reg.DumpJson();
  EXPECT_EQ(runs, 1);
  EXPECT_NE(json.find("bp_collected_total"), std::string::npos);
  EXPECT_NE(json.find("bp-metrics-v1"), std::string::npos);
  reg.RemoveCollector(token);
  json = reg.DumpJson();
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(json.find("bp_collected_total"), std::string::npos);
}

TEST(MetricsRegistryTest, DumpTextIsPrometheusShaped) {
  MetricsRegistry reg;
  reg.GetCounter("bp_things_total", "", "things")->Add(3);
  reg.GetGauge("bp_level", "", "level")->Set(-2);
  Histogram* h = reg.GetHistogram("bp_lat_us", "op=\"x\"", "latency");
  h->Record(10);
  h->Record(20);
  const std::string text = reg.DumpText();
  EXPECT_NE(text.find("# TYPE bp_things_total counter"), std::string::npos);
  EXPECT_NE(text.find("bp_things_total 3"), std::string::npos);
  EXPECT_NE(text.find("bp_level -2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE bp_lat_us summary"), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
  EXPECT_NE(text.find("bp_lat_us_count{op=\"x\"} 2"), std::string::npos);
}

TEST(MetricsRegistryTest, ScopedTimerRecordsAndNullIsNoop) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("bp_timer_us", "", "");
  { ScopedTimerUs t(h); }
  EXPECT_EQ(h->count(), 1u);
  { ScopedTimerUs t(nullptr); }  // must not crash
}

// --------------------------------------------------------------- tracer

TEST(TracerTest, SlowSpansLandInRingWithParent) {
  Tracer tracer;
  tracer.set_slow_threshold_us(0);  // record everything
  {
    ScopedSpan outer("outer", &tracer);
    ScopedSpan inner("inner", &tracer);
  }
  std::vector<SlowSpan> spans = tracer.SlowSpans();
  ASSERT_EQ(spans.size(), 2u);
  // Inner ends first, so it is recorded first.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].parent, "outer");
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].parent, "");
  EXPECT_EQ(spans[1].depth, 0u);
}

TEST(TracerTest, FastSpansAreDroppedAndRingIsBounded) {
  Tracer tracer;
  tracer.set_slow_threshold_us(60'000'000);  // nothing is that slow
  { ScopedSpan span("fast", &tracer); }
  EXPECT_TRUE(tracer.SlowSpans().empty());

  tracer.set_slow_threshold_us(0);
  for (size_t i = 0; i < Tracer::kRingCapacity + 10; ++i) {
    ScopedSpan span("filler", &tracer);
  }
  EXPECT_EQ(tracer.SlowSpans().size(), Tracer::kRingCapacity);
  const std::string json = tracer.DumpJsonSpans();
  EXPECT_NE(json.find("\"slow_spans_dropped\": 10"), std::string::npos);
  tracer.Clear();
  EXPECT_TRUE(tracer.SlowSpans().empty());
}

}  // namespace
}  // namespace bp::obs
