// Adversarial coverage for the storage compression codecs: round-trips
// over pathological inputs, and the hard guarantee that truncated or
// bit-flipped frames come back as Corruption — never as an out-of-bounds
// read (this test stays in the ASan/TSan heavy list for that reason).
#include "storage/compress.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "storage/page.hpp"

namespace bp::storage::compress {
namespace {

using util::Status;

std::string RandomBytes(size_t n, uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> byte(0, 255);
  std::string out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(static_cast<char>(byte(rng)));
  return out;
}

std::string CompressibleBytes(size_t n, uint32_t seed) {
  // Repetitive structure with mild noise — the shape of a B-tree page.
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> byte(0, 7);
  std::string out;
  out.reserve(n);
  while (out.size() < n) {
    std::string run = "https://example.com/path/";
    run.push_back(static_cast<char>('a' + byte(rng)));
    out.append(run, 0, std::min(run.size(), n - out.size()));
  }
  return out;
}

void ExpectRoundTrip(Codec codec, const std::string& raw) {
  const std::string frame = Compress(codec, raw);
  ASSERT_TRUE(LooksLikeFrame(frame));
  auto info = Inspect(frame);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->codec, codec);
  EXPECT_EQ(info->raw_size, raw.size());
  EXPECT_EQ(info->stored_size, frame.size());
  std::string back;
  Status st = Decompress(frame, &back);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(back, raw);
}

TEST(CompressFrame, RoundTripEmpty) {
  ExpectRoundTrip(Codec::kNone, "");
  ExpectRoundTrip(Codec::kLz, "");
  ExpectRoundTrip(Codec::kIntDelta, "");
}

TEST(CompressFrame, RoundTripTiny) {
  for (size_t n = 1; n <= 8; ++n) {
    ExpectRoundTrip(Codec::kLz, std::string(n, 'x'));
    ExpectRoundTrip(Codec::kLz, RandomBytes(n, 17 + n));
  }
}

TEST(CompressFrame, RoundTripAllZero) {
  const std::string zeros(kPageSize, '\0');
  const std::string frame = Compress(Codec::kLz, zeros);
  // An all-zero page must compress dramatically (it is the padding /
  // fresh-page case).
  EXPECT_LT(frame.size(), kPageSize / 16);
  ExpectRoundTrip(Codec::kLz, zeros);
  ExpectRoundTrip(Codec::kIntDelta, zeros);
}

TEST(CompressFrame, RoundTripIncompressibleRandom) {
  const std::string noise = RandomBytes(kPageSize, 42);
  ExpectRoundTrip(Codec::kLz, noise);
  // Literal-run overhead must stay small even on pure noise.
  EXPECT_LT(Compress(Codec::kLz, noise).size(), kPageSize + 64);
}

TEST(CompressFrame, RoundTripCompressible) {
  const std::string page = CompressibleBytes(kPageSize, 7);
  ExpectRoundTrip(Codec::kLz, page);
  EXPECT_LT(Compress(Codec::kLz, page).size(), kPageSize / 2);
}

TEST(CompressFrame, RoundTripMaxSizeBlock) {
  // Largest block the engine compresses in one frame today (a page),
  // plus a deliberately larger 256 KiB stress block exercising long
  // matches and literal runs >= 15 (the 255-run extension encoding).
  ExpectRoundTrip(Codec::kLz, CompressibleBytes(kPageSize, 3));
  std::string big = CompressibleBytes(256 * 1024, 5);
  big += RandomBytes(4096, 9);
  big += std::string(4096, '\7');
  ExpectRoundTrip(Codec::kLz, big);
}

TEST(CompressFrame, RoundTripManySeeds) {
  for (uint32_t seed = 0; seed < 32; ++seed) {
    std::string mixed = CompressibleBytes(512 + seed * 37, seed);
    mixed += RandomBytes(256 + seed * 11, seed ^ 0xbeef);
    ExpectRoundTrip(Codec::kLz, mixed);
  }
}

TEST(CompressFrame, IntDeltaRoundTrip) {
  // Sorted id arrays are the sweet spot.
  std::string raw;
  uint64_t v = 1000;
  for (int i = 0; i < 512; ++i) {
    v += 3 + (i % 5);
    for (size_t b = 0; b < 8; ++b) raw.push_back(static_cast<char>(v >> (8 * b)));
  }
  ExpectRoundTrip(Codec::kIntDelta, raw);
  EXPECT_LT(Compress(Codec::kIntDelta, raw).size(), raw.size() / 2);
  // Unsorted (negative deltas) must still round-trip via zig-zag.
  ExpectRoundTrip(Codec::kIntDelta, RandomBytes(512 * 8, 11));
}

TEST(CompressFrame, TrailingPaddingIgnored) {
  // Page slots are zero-padded to kPageSize; Decompress must use the
  // header's payload size and ignore the tail.
  const std::string raw = CompressibleBytes(kPageSize, 21);
  std::string slot = Compress(Codec::kLz, raw);
  ASSERT_LT(slot.size(), kPageSize);
  slot.resize(kPageSize, '\0');
  std::string back;
  ASSERT_TRUE(Decompress(slot, &back).ok());
  EXPECT_EQ(back, raw);
}

TEST(CompressFrame, EveryTruncationIsCorruption) {
  const std::string raw = CompressibleBytes(2048, 13);
  for (Codec codec : {Codec::kNone, Codec::kLz, Codec::kIntDelta}) {
    const std::string frame =
        Compress(codec, codec == Codec::kIntDelta ? raw.substr(0, 2040) : raw);
    for (size_t cut = 0; cut < frame.size(); ++cut) {
      std::string truncated = frame.substr(0, cut);
      std::string out;
      Status st = Decompress(truncated, &out);
      EXPECT_TRUE(st.IsCorruption())
          << "codec " << static_cast<int>(codec) << " cut at " << cut
          << " -> " << st.ToString();
    }
  }
}

TEST(CompressFrame, EveryBitFlipIsCorruptionOrDetectedByChecksum) {
  const std::string raw = CompressibleBytes(1024, 99);
  const std::string frame = Compress(Codec::kLz, raw);
  for (size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = frame;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      std::string out;
      Status st = Decompress(flipped, &out);
      // A flip in the magic makes it not-a-frame (Corruption via bad
      // magic); anywhere else the checksum or size checks catch it. The
      // invariant under test: never OK-with-wrong-bytes, never a crash.
      if (st.ok()) {
        EXPECT_EQ(out, raw) << "flip at byte " << byte << " bit " << bit;
      } else {
        EXPECT_TRUE(st.IsCorruption());
      }
    }
  }
}

TEST(CompressFrame, AdversarialPayloadsNeverReadOutOfBounds) {
  // Hand-build frames whose payloads lie about lengths/offsets: the LZ
  // decoder must reject them all. We forge valid checksums so decode
  // reaches the payload parser.
  auto forge = [](std::string payload, uint32_t raw_size) {
    // Re-frame via Compress(kNone) to get a valid header, then rewrite
    // codec and raw_size and re-checksum by building manually.
    std::string frame = Compress(Codec::kNone, payload);
    frame[4] = static_cast<char>(Codec::kLz);
    for (size_t b = 0; b < 4; ++b) {
      frame[5 + b] = static_cast<char>(raw_size >> (8 * b));
    }
    return frame;
  };
  std::string out;
  // Token promises 15+ext literals but payload ends.
  EXPECT_TRUE(Decompress(forge("\xf0", 64), &out).IsCorruption());
  // Match offset 0 (self-reference before any output).
  EXPECT_TRUE(
      Decompress(forge(std::string("\x04head\x00\x00", 7), 64), &out)
          .IsCorruption());
  // Offset larger than produced output.
  EXPECT_TRUE(
      Decompress(forge(std::string("\x14hello\xff\xff", 8), 64), &out)
          .IsCorruption());
  // Literal run larger than raw_size.
  const std::string huge_run =
      std::string("\xf0\xff\xff\xff") + std::string(1, '\0') + "abc";
  EXPECT_TRUE(Decompress(forge(huge_run, 8), &out).IsCorruption());
  // Unknown codec id.
  std::string frame = Compress(Codec::kNone, "abc");
  frame[4] = 7;
  EXPECT_TRUE(Decompress(frame, &out).IsCorruption());
  // Empty input / short header.
  EXPECT_TRUE(Decompress("", &out).IsCorruption());
  EXPECT_TRUE(Decompress("FCPB", &out).IsCorruption());
  EXPECT_FALSE(LooksLikeFrame(""));
}

TEST(CompressFrame, RawPagesNeverMistakenForFrames) {
  // Raw B-tree pages start with type byte 1/2/3; freelist pages with a
  // u32 page id. The magic's low byte is 0x46, so only a real frame
  // matches.
  for (uint8_t type : {1, 2, 3}) {
    std::string page(kPageSize, '\0');
    page[0] = static_cast<char>(type);
    EXPECT_FALSE(LooksLikeFrame(page));
  }
}

TEST(DeltaPairs, RoundTripAndHardening) {
  std::vector<std::pair<uint64_t, uint64_t>> pairs;
  uint64_t key = 5;
  for (int i = 0; i < 1000; ++i) {
    key += 1 + (i % 17);
    pairs.emplace_back(key, static_cast<uint64_t>(i % 9 + 1));
  }
  const std::string blob = EncodeDeltaPairs(pairs);
  std::vector<std::pair<uint64_t, uint64_t>> back;
  ASSERT_TRUE(DecodeDeltaPairs(blob, &back).ok());
  EXPECT_EQ(back, pairs);

  // Every truncation is Corruption.
  for (size_t cut = 0; cut < blob.size(); ++cut) {
    EXPECT_TRUE(DecodeDeltaPairs(blob.substr(0, cut), &back).IsCorruption());
  }
  // A count that the payload cannot back is rejected before reserve().
  std::string lying = "\xff\xff\xff\xff\x0f";  // count ~2^32, no payload
  EXPECT_TRUE(DecodeDeltaPairs(lying, &back).IsCorruption());
  // Trailing garbage is rejected.
  std::string trailing = blob + "x";
  EXPECT_TRUE(DecodeDeltaPairs(trailing, &back).IsCorruption());
  // Empty list round-trips.
  ASSERT_TRUE(DecodeDeltaPairs(EncodeDeltaPairs({}), &back).ok());
  EXPECT_TRUE(back.empty());
}

TEST(Policy, RatioFloorFiltersIncompressible) {
  CompressionOptions on;
  on.mode = CompressionOptions::Mode::kFast;
  // Compressible page -> a frame comes back, smaller than the floor.
  const std::string page = CompressibleBytes(kPageSize, 4);
  std::string frame = MaybeCompressPage(on, page);
  ASSERT_FALSE(frame.empty());
  EXPECT_LE(frame.size(),
            static_cast<size_t>(on.ratio_floor * kPageSize));
  std::string back;
  ASSERT_TRUE(Decompress(frame, &back).ok());
  EXPECT_EQ(back, page);
  // Random page -> stored raw.
  EXPECT_TRUE(MaybeCompressPage(on, RandomBytes(kPageSize, 5)).empty());
  // Disabled -> always raw.
  CompressionOptions off;
  off.mode = CompressionOptions::Mode::kOff;
  EXPECT_TRUE(MaybeCompressPage(off, page).empty());
}

}  // namespace
}  // namespace bp::storage::compress
